//! Shared uncertainty summaries over predictive distributions.
//!
//! Every consumer of a Monte Carlo predictive — the dataset-level
//! metrics in [`crate::avg_predictive_entropy`] /
//! [`crate::mutual_information`], the OOD examples, and the `bnn-serve`
//! front door's per-request [`Uncertainty`] reports — computes the same
//! three quantities from the same inputs:
//!
//! * **max-prob confidence**: the predictive mean's largest class
//!   probability (the quantity a confidence histogram bins);
//! * **predictive entropy** `H[p] = −Σ_k p_k ln p_k` in nats (total
//!   uncertainty: aleatoric + epistemic);
//! * **mutual information** (BALD)
//!   `I[y; M | x] = H[E_M p(y|x,M)] − E_M H[p(y|x,M)]` (the epistemic
//!   share — the part more Monte Carlo samples and more Bayesian
//!   layers can expose; OOD inputs score high here).
//!
//! This module is the single home for that math: row-level primitives
//! ([`entropy`], [`max_prob`], [`predictive_entropies`],
//! [`mutual_information_rows`]) plus the per-item [`Uncertainty`]
//! summary a serving reply carries.

use bnn_tensor::Tensor;

/// Shannon entropy in nats of one probability row: `−Σ_k p_k ln p_k`.
/// Zero-probability entries contribute nothing (the `p ln p → 0`
/// limit), so hard one-hot rows score exactly 0.
pub fn entropy(row: &[f32]) -> f64 {
    let mut h = 0.0f64;
    for &pv in row {
        let p = f64::from(pv);
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    h
}

/// Largest entry of a probability row: `(argmax, p_max)`. Ties break
/// to the first index (the same rule as `Tensor::argmax_item`).
///
/// # Panics
///
/// Panics if `row` is empty.
pub fn max_prob(row: &[f32]) -> (usize, f32) {
    assert!(!row.is_empty(), "probability row must be non-empty");
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    (best, row[best])
}

/// The entropy ceiling for a `k`-class distribution: `ln k`, reached
/// by the uniform row (what an OOD confidence plot is scaled against).
pub fn max_entropy(k: usize) -> f64 {
    (k as f64).ln()
}

/// Per-row predictive entropies of an `(n, k)` probability tensor.
pub fn predictive_entropies(probs: &Tensor) -> Vec<f64> {
    (0..probs.shape().n)
        .map(|i| entropy(probs.item(i)))
        .collect()
}

/// The BALD mutual information of one batch item across Monte Carlo
/// passes: `H[mean] − E[H]`, clamped at zero (floating-point rounding
/// can push the analytically non-negative difference slightly below).
///
/// # Panics
///
/// Panics if `passes` is empty or `item` is out of range.
pub fn item_mutual_information(passes: &[Tensor], item: usize) -> f64 {
    assert!(!passes.is_empty(), "at least one Monte Carlo pass required");
    let k = passes[0].shape().item_len();
    let mut mean = vec![0.0f64; k];
    let mut expected_h = 0.0f64;
    for p in passes {
        let row = p.item(item);
        let mut h = 0.0f64;
        for (j, &v) in row.iter().enumerate() {
            let v = f64::from(v);
            mean[j] += v;
            if v > 0.0 {
                h -= v * v.ln();
            }
        }
        expected_h += h;
    }
    let inv = 1.0 / passes.len() as f64;
    expected_h *= inv;
    let mut h_mean = 0.0f64;
    for m in &mut mean {
        *m *= inv;
        if *m > 0.0 {
            h_mean -= *m * m.ln();
        }
    }
    (h_mean - expected_h).max(0.0)
}

/// Per-row BALD mutual information across Monte Carlo passes (each
/// pass an `(n, k)` probability tensor).
///
/// # Panics
///
/// Panics if `passes` is empty.
pub fn mutual_information_rows(passes: &[Tensor]) -> Vec<f64> {
    assert!(!passes.is_empty(), "at least one Monte Carlo pass required");
    (0..passes[0].shape().n)
        .map(|i| item_mutual_information(passes, i))
        .collect()
}

/// The uncertainty summary of one served prediction, as handed to a
/// `bnn-serve` caller next to its probability row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uncertainty {
    /// Predicted class: argmax of the predictive mean.
    pub predicted: usize,
    /// Max-prob confidence: the predictive mean's largest probability.
    pub confidence: f32,
    /// Predictive entropy of the mean in nats (total uncertainty;
    /// ceiling [`max_entropy`]`(k)`).
    pub entropy: f64,
    /// BALD mutual information in nats (the epistemic share).
    pub mutual_information: f64,
}

impl Uncertainty {
    /// Summarize one batch item from its predictive mean and the
    /// per-sample passes that produced it ([`crate::mean_probs`] of the
    /// same passes — entropy and confidence are computed from the f32
    /// mean actually handed to the caller, mutual information from the
    /// per-sample rows).
    ///
    /// # Panics
    ///
    /// Panics if `passes` is empty or `item` is out of range.
    pub fn summarize(mean: &Tensor, passes: &[Tensor], item: usize) -> Uncertainty {
        let row = mean.item(item);
        let (predicted, confidence) = max_prob(row);
        Uncertainty {
            predicted,
            confidence,
            entropy: entropy(row),
            mutual_information: item_mutual_information(passes, item),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_tensor::Shape4;

    fn probs(rows: Vec<Vec<f32>>) -> Tensor {
        let n = rows.len();
        let k = rows[0].len();
        Tensor::from_vec(Shape4::vec(n, k), rows.into_iter().flatten().collect())
    }

    #[test]
    fn entropy_of_hand_computed_distributions() {
        // Uniform over 4: exactly ln 4.
        assert!((entropy(&[0.25; 4]) - 4.0f64.ln()).abs() < 1e-12);
        // One-hot: exactly 0 (zero entries contribute nothing).
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
        // (0.5, 0.5): ln 2.
        assert!((entropy(&[0.5, 0.5]) - 2.0f64.ln()).abs() < 1e-12);
        // (0.75, 0.25) by hand: −0.75 ln 0.75 − 0.25 ln 0.25
        //  = 0.215762... + 0.346573... = 0.562335...
        let want = -(0.75f64 * 0.75f64.ln()) - 0.25f64 * 0.25f64.ln();
        assert!((entropy(&[0.75, 0.25]) - want).abs() < 1e-6);
        assert!((want - 0.5623351446188083).abs() < 1e-12);
    }

    #[test]
    fn max_prob_picks_first_on_ties() {
        assert_eq!(max_prob(&[0.1, 0.6, 0.3]), (1, 0.6));
        assert_eq!(max_prob(&[0.4, 0.4, 0.2]), (0, 0.4));
        assert_eq!(max_prob(&[1.0]), (0, 1.0));
    }

    #[test]
    fn max_entropy_is_uniform_entropy() {
        for k in [2usize, 10, 1000] {
            let uniform = vec![1.0f32 / k as f32; k];
            assert!((entropy(&uniform) - max_entropy(k)).abs() < 1e-4);
        }
    }

    #[test]
    fn predictive_entropies_are_per_row() {
        let p = probs(vec![vec![1.0, 0.0], vec![0.5, 0.5]]);
        let h = predictive_entropies(&p);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0], 0.0);
        assert!((h[1] - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_of_hand_computed_passes() {
        // Two confident, contradictory passes on one item:
        // mean = (0.5, 0.5) → H[mean] = ln 2; each pass is one-hot →
        // E[H] = 0; MI = ln 2 exactly.
        let a = probs(vec![vec![1.0, 0.0]]);
        let b = probs(vec![vec![0.0, 1.0]]);
        let mi = item_mutual_information(&[a, b], 0);
        assert!((mi - 2.0f64.ln()).abs() < 1e-12);

        // Identical passes: H[mean] = E[H] → MI exactly 0.
        let p = probs(vec![vec![0.7, 0.3]]);
        assert!(item_mutual_information(&[p.clone(), p], 0) < 1e-12);
    }

    #[test]
    fn mutual_information_rows_match_items() {
        let a = probs(vec![vec![1.0, 0.0], vec![0.6, 0.4]]);
        let b = probs(vec![vec![0.0, 1.0], vec![0.6, 0.4]]);
        let rows = mutual_information_rows(&[a.clone(), b.clone()]);
        assert_eq!(rows.len(), 2);
        assert!((rows[0] - 2.0f64.ln()).abs() < 1e-12, "disagreeing item");
        assert!(rows[1] < 1e-12, "agreeing item is purely aleatoric");
        assert_eq!(rows[0], item_mutual_information(&[a, b], 0));
    }

    #[test]
    fn summarize_combines_all_three() {
        let a = probs(vec![vec![1.0, 0.0]]);
        let b = probs(vec![vec![0.0, 1.0]]);
        let mean = crate::mean_probs(&[a.clone(), b.clone()], 2);
        let u = Uncertainty::summarize(&mean, &[a, b], 0);
        assert_eq!(u.predicted, 0, "tie breaks to the first class");
        assert!((f64::from(u.confidence) - 0.5).abs() < 1e-7);
        assert!((u.entropy - 2.0f64.ln()).abs() < 1e-6);
        assert!((u.mutual_information - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one Monte Carlo pass")]
    fn mutual_information_rejects_empty_passes() {
        let _ = mutual_information_rows(&[]);
    }
}
