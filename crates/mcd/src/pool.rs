//! A persistent worker pool for the sampling engine.
//!
//! The paper's accelerator amortizes control overhead across Monte
//! Carlo samples and inputs by keeping its compute units resident;
//! the software analogue is to keep the sampler's worker threads
//! resident too. Before this module the engine spawned a fresh
//! `std::thread::scope` team per predictive call, paying thread
//! creation and teardown on every request — the dominant fixed cost
//! at small `S`. A [`WorkerPool`] is created once (typically owned by
//! a `Session`), its threads block on a chunked work queue, and every
//! predictive call simply enqueues its sample/batch chunks.
//!
//! Properties the engine relies on:
//!
//! * **Order preservation** — [`WorkerPool::run`] returns task
//!   results in task order regardless of which worker executed what,
//!   so the engine's bit-identical-at-any-parallelism guarantee
//!   holds at any pool size.
//! * **Nesting without deadlock** — a task may itself call
//!   [`WorkerPool::run`] on the same pool (the two-axis batch ×
//!   sample schedule does exactly that). Waiting callers *help*: they
//!   execute queued work instead of blocking idle, so progress never
//!   depends on a free worker existing.
//! * **Panic isolation** — a panicking task poisons *its call*, not
//!   the process: the payload is captured on the worker and re-thrown
//!   from [`WorkerPool::run`] on the calling thread, and the worker
//!   thread survives to serve later calls.
//! * **Inline degradation** — a pool with zero workers (or a
//!   single-task call) runs everything on the calling thread with no
//!   queue traffic, so `ParallelConfig::serial()` still spawns and
//!   synchronizes nothing.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// A type-erased unit of work on the shared queue.
type Job = Box<dyn FnOnce() + Send>;

/// Queue state guarded by the pool mutex.
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    state: Mutex<QueueState>,
    cv: Condvar,
}

/// Lock a mutex, ignoring poisoning: queue and result state are only
/// ever mutated outside task execution (task panics are caught before
/// they can unwind through a held lock), so a poisoned lock still
/// guards consistent data.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A persistent team of worker threads executing chunked work.
///
/// Create one per serving context ([`crate::ParallelConfig`] sizes the
/// `Session` default) or share one across sessions via `Arc`; the
/// engine entry points with a `_pooled` suffix take it explicitly,
/// and the legacy entry points fall back to [`WorkerPool::global`].
/// Dropping the pool shuts the workers down (pending jobs are drained
/// first, so no submitted call is abandoned).
///
/// # Example
///
/// ```
/// use bnn_mcd::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
///     (0..8usize).map(|i| Box::new(move || i * i) as Box<_>).collect();
/// assert_eq!(pool.run(tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool with `workers` resident threads. Zero workers is a
    /// valid pool: every [`WorkerPool::run`] then executes inline on
    /// the calling thread (the right choice on single-core hosts).
    pub fn new(workers: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bnn-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// The process-wide fallback pool used by the engine entry points
    /// that do not take an explicit pool: one resident worker per CPU
    /// beyond the caller's (zero on a single-core host, where inline
    /// execution beats any fan-out).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cpus = std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1);
            WorkerPool::new(cpus.saturating_sub(1))
        })
    }

    /// A process-wide zero-worker pool: every run executes inline.
    /// The engine hands this to fully serial schedules so they never
    /// spin up the real [`WorkerPool::global`] threads.
    pub(crate) fn inline() -> &'static WorkerPool {
        static INLINE: OnceLock<WorkerPool> = OnceLock::new();
        INLINE.get_or_init(|| WorkerPool::new(0))
    }

    /// Number of resident worker threads (the calling thread always
    /// helps on top of these).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Execute `tasks` to completion and return their results in task
    /// order.
    ///
    /// The calling thread participates: after enqueueing, it executes
    /// queued work (its own or other calls') until its tasks are done,
    /// which is what makes nested `run` calls on one pool — the batch
    /// × sample schedule — deadlock-free. With zero workers or a
    /// single task everything runs inline on the caller.
    ///
    /// # Panics
    ///
    /// If any task panics, the first payload (in task order) is
    /// re-thrown on the calling thread once all tasks of this call
    /// have settled. The worker that caught it keeps serving.
    pub fn run<'env, T: Send + 'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.handles.is_empty() || n == 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }

        /// Rendezvous between one `run` call and its in-flight tasks.
        struct CallState<T> {
            /// Tasks not yet settled; the caller returns at zero.
            remaining: AtomicUsize,
            /// One result slot per task, written exactly once.
            slots: Mutex<Vec<Option<std::thread::Result<T>>>>,
        }

        let call = Arc::new(CallState {
            remaining: AtomicUsize::new(n),
            slots: Mutex::new((0..n).map(|_| None).collect()),
        });
        {
            let mut st = lock(&self.shared.state);
            for (i, task) in tasks.into_iter().enumerate() {
                let call = Arc::clone(&call);
                let shared = Arc::clone(&self.shared);
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(task));
                    lock(&call.slots)[i] = Some(result);
                    if call.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Last task of the call: wake the waiting
                        // caller (under the lock, so the wakeup cannot
                        // race its remaining-check-then-wait).
                        let _guard = lock(&shared.state);
                        shared.cv.notify_all();
                    }
                });
                st.jobs.push_back(erase_job(job));
            }
            self.shared.cv.notify_all();
        }

        // Help while waiting: run queued jobs (not necessarily ours)
        // until every task of this call has settled.
        let mut st = lock(&self.shared.state);
        while call.remaining.load(Ordering::Acquire) > 0 {
            if let Some(job) = st.jobs.pop_front() {
                drop(st);
                job();
                st = lock(&self.shared.state);
            } else {
                st = self
                    .shared
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        drop(st);

        let results: Vec<_> = lock(&call.slots).drain(..).collect();
        results
            .into_iter()
            .map(|slot| match slot.expect("every task settled") {
                Ok(value) => value,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker only terminates at the queue drain below; a
            // join error would mean a panic escaped a job wrapper,
            // which catch_unwind precludes.
            let _ = handle.join();
        }
    }
}

/// Worker body: pop and execute jobs until shutdown drains the queue.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Task panics are caught inside the job wrapper built by
        // `run`, so `job()` cannot unwind the worker.
        job();
    }
}

/// Erase a job's borrow lifetime so it can sit on the `'static` queue.
///
/// SAFETY: a job produced by [`WorkerPool::run`] decrements its call's
/// `remaining` counter only *after* the borrowed task has been
/// consumed and its result stored, and `run` does not return before
/// `remaining` reaches zero. Every borrow captured by the job is
/// therefore live for the job's whole execution; after `run` returns,
/// surviving clones of the job's `Arc`s hold only `'static`-shaped
/// data (emptied result slots and the queue state). This is the same
/// completion-before-return argument that underpins
/// `std::thread::scope`, with the scope being one `run` call.
#[allow(unsafe_code)]
fn erase_job<'env>(job: Box<dyn FnOnce() + Send + 'env>) -> Job {
    // SAFETY: completion-before-return (argued above) keeps every
    // borrow captured by `job` live for the job's whole execution;
    // the transmute erases only the lifetime, not the layout.
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(3);
        for round in 0..10 {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..17)
                .map(|i| Box::new(move || i * 3 + round) as Box<_>)
                .collect();
            let got = pool.run(tasks);
            let want: Vec<usize> = (0..17).map(|i| i * 3 + round).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 0);
        let caller = std::thread::current().id();
        let tasks: Vec<Box<dyn FnOnce() -> std::thread::ThreadId + Send>> = (0..4)
            .map(|_| Box::new(|| std::thread::current().id()) as Box<_>)
            .collect();
        for id in pool.run(tasks) {
            assert_eq!(id, caller, "zero-worker pool must not leave the caller");
        }
    }

    #[test]
    fn tasks_can_borrow_from_the_caller() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..100).collect();
        let chunks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = data
            .chunks(7)
            .map(|c| Box::new(move || c.iter().sum::<u64>()) as Box<_>)
            .collect();
        let total: u64 = pool.run(chunks).into_iter().sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        // More nested calls than workers: only caller-helping keeps
        // this from wedging.
        let pool = WorkerPool::new(1);
        let outer: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = (0..4u64)
            .map(|i| {
                let pool = &pool;
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..4u64)
                        .map(|j| Box::new(move || i * 10 + j) as Box<_>)
                        .collect();
                    pool.run(inner).into_iter().sum()
                }) as Box<_>
            })
            .collect();
        let got: Vec<u64> = pool.run(outer);
        assert_eq!(got, vec![6, 46, 86, 126]);
    }

    #[test]
    fn panic_poisons_the_call_not_the_pool() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("injected task panic");
                    }
                    i
                }) as Box<_>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)))
            .expect_err("panicking task must poison the call");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "injected task panic");
        // The pool keeps serving afterwards.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| Box::new(move || i + 1) as Box<_>)
            .collect();
        assert_eq!(pool.run(tasks), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = Arc::new(WorkerPool::new(2));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            joins.push(std::thread::spawn(move || {
                let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8)
                    .map(|i| Box::new(move || t * 100 + i) as Box<_>)
                    .collect();
                pool.run(tasks)
            }));
        }
        for (t, j) in joins.into_iter().enumerate() {
            let got = j.join().expect("caller thread survived");
            let want: Vec<u64> = (0..8).map(|i| t as u64 * 100 + i).collect();
            assert_eq!(got, want);
        }
    }
}
