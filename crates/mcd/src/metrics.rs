//! Uncertainty and calibration metrics (paper Section V-A).

use bnn_tensor::Tensor;

/// Classification accuracy of predictive probabilities `(n, k)`
/// against integer labels.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch dimension.
pub fn accuracy(probs: &Tensor, labels: &[usize]) -> f64 {
    let n = probs.shape().n;
    assert_eq!(labels.len(), n, "one label per row required");
    let correct = labels
        .iter()
        .enumerate()
        .filter(|&(i, &y)| probs.argmax_item(i) == y)
        .count();
    correct as f64 / n as f64
}

/// Average predictive entropy in nats:
/// `aPE = 1/E Σ_e −Σ_k p(y_k|x_e) log p(y_k|x_e)`.
///
/// The paper evaluates this on Gaussian-noise inputs — higher is
/// better there (the network *should* be uncertain). The per-row
/// entropies come from the shared [`crate::uncertainty`] primitives.
pub fn avg_predictive_entropy(probs: &Tensor) -> f64 {
    let n = probs.shape().n;
    crate::uncertainty::predictive_entropies(probs)
        .into_iter()
        .sum::<f64>()
        / n as f64
}

/// Decomposed epistemic uncertainty: the BALD mutual information
/// `I[y; M | x] = H[E_M p(y|x,M)] − E_M H[p(y|x,M)]` averaged over a
/// dataset, computed from the per-sample probability tensors of
/// [`crate::McdPredictor::sample_probs`].
///
/// Total entropy splits into *aleatoric* (expected per-sample entropy,
/// noise the model cannot remove) and *epistemic* (the mutual
/// information, which more Monte Carlo samples and more Bayesian
/// layers can expose). OOD inputs show high epistemic uncertainty;
/// ambiguous in-distribution inputs show high aleatoric uncertainty.
///
/// # Panics
///
/// Panics if `passes` is empty.
pub fn mutual_information(passes: &[Tensor]) -> f64 {
    assert!(!passes.is_empty(), "at least one Monte Carlo pass required");
    let n = passes[0].shape().n;
    crate::uncertainty::mutual_information_rows(passes)
        .into_iter()
        .sum::<f64>()
        / n as f64
}

/// Mean negative log-likelihood of the labels under the predictive.
pub fn nll(probs: &Tensor, labels: &[usize]) -> f64 {
    let n = probs.shape().n;
    assert_eq!(labels.len(), n, "one label per row required");
    let mut total = 0.0f64;
    for (i, &y) in labels.iter().enumerate() {
        let p = f64::from(probs.item(i)[y]).max(1e-12);
        total -= p.ln();
    }
    total / n as f64
}

/// Reliability-diagram data behind an ECE evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Per-bin sample counts.
    pub counts: Vec<usize>,
    /// Per-bin mean confidence.
    pub confidence: Vec<f64>,
    /// Per-bin accuracy.
    pub accuracy: Vec<f64>,
    /// Expected calibration error (weighted |acc − conf|).
    pub ece: f64,
}

/// Expected calibration error with `bins` equal-width confidence bins
/// (the paper uses 10).
///
/// # Panics
///
/// Panics if `bins == 0` or label/row counts mismatch.
pub fn ece(probs: &Tensor, labels: &[usize], bins: usize) -> Calibration {
    assert!(bins > 0, "at least one bin required");
    let n = probs.shape().n;
    assert_eq!(labels.len(), n, "one label per row required");
    let mut counts = vec![0usize; bins];
    let mut conf_sum = vec![0.0f64; bins];
    let mut acc_sum = vec![0.0f64; bins];
    for (i, &y) in labels.iter().enumerate() {
        let pred = probs.argmax_item(i);
        let conf = f64::from(probs.item(i)[pred]);
        let b = ((conf * bins as f64) as usize).min(bins - 1);
        counts[b] += 1;
        conf_sum[b] += conf;
        acc_sum[b] += f64::from(u8::from(pred == y));
    }
    let mut ece_val = 0.0f64;
    let mut confidence = vec![0.0f64; bins];
    let mut accuracy_v = vec![0.0f64; bins];
    for b in 0..bins {
        if counts[b] == 0 {
            continue;
        }
        confidence[b] = conf_sum[b] / counts[b] as f64;
        accuracy_v[b] = acc_sum[b] / counts[b] as f64;
        ece_val += (counts[b] as f64 / n as f64) * (accuracy_v[b] - confidence[b]).abs();
    }
    Calibration {
        counts,
        confidence,
        accuracy: accuracy_v,
        ece: ece_val,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_tensor::Shape4;

    fn probs(rows: Vec<Vec<f32>>) -> Tensor {
        let n = rows.len();
        let k = rows[0].len();
        Tensor::from_vec(Shape4::vec(n, k), rows.into_iter().flatten().collect())
    }

    #[test]
    fn accuracy_counts_argmax() {
        let p = probs(vec![vec![0.9, 0.1], vec![0.2, 0.8], vec![0.6, 0.4]]);
        assert!((accuracy(&p, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_extremes() {
        let uniform = probs(vec![vec![0.25; 4]]);
        assert!((avg_predictive_entropy(&uniform) - (4.0f64).ln()).abs() < 1e-6);
        let point = probs(vec![vec![1.0, 0.0, 0.0, 0.0]]);
        assert!(avg_predictive_entropy(&point) < 1e-9);
    }

    #[test]
    fn entropy_monotone_in_uncertainty() {
        let sharp = probs(vec![vec![0.9, 0.05, 0.05]]);
        let flat = probs(vec![vec![0.5, 0.3, 0.2]]);
        assert!(avg_predictive_entropy(&flat) > avg_predictive_entropy(&sharp));
    }

    #[test]
    fn nll_prefers_confident_correct() {
        let good = probs(vec![vec![0.9, 0.1]]);
        let bad = probs(vec![vec![0.1, 0.9]]);
        assert!(nll(&good, &[0]) < nll(&bad, &[0]));
    }

    #[test]
    fn perfectly_calibrated_has_zero_ece() {
        // Confidence 1.0 and always correct.
        let p = probs(vec![vec![1.0, 0.0], vec![1.0, 0.0]]);
        let c = ece(&p, &[0, 0], 10);
        assert!(c.ece < 1e-9);
    }

    #[test]
    fn overconfident_wrong_predictions_raise_ece() {
        // Confidence ~0.95 but only 50% correct.
        let p = probs(vec![vec![0.95, 0.05], vec![0.95, 0.05]]);
        let c = ece(&p, &[0, 1], 10);
        assert!((c.ece - 0.45).abs() < 1e-6, "ece = {}", c.ece);
    }

    #[test]
    fn ece_bins_partition_samples() {
        let p = probs(vec![
            vec![0.55, 0.45],
            vec![0.65, 0.35],
            vec![0.95, 0.05],
            vec![0.31, 0.69],
        ]);
        let c = ece(&p, &[0, 0, 0, 1], 10);
        assert_eq!(c.counts.iter().sum::<usize>(), 4);
    }

    #[test]
    fn mutual_information_zero_for_identical_passes() {
        // No disagreement between samples => purely aleatoric.
        let p = probs(vec![vec![0.7, 0.3]]);
        let passes = vec![p.clone(), p.clone(), p];
        assert!(mutual_information(&passes) < 1e-9);
    }

    #[test]
    fn mutual_information_positive_for_disagreeing_passes() {
        // Confident but contradictory samples => epistemic uncertainty.
        let a = probs(vec![vec![0.99, 0.01]]);
        let b = probs(vec![vec![0.01, 0.99]]);
        let mi = mutual_information(&[a, b]);
        // H[mean] = H[0.5] = ln 2; E[H] ~ 0.056; MI ~ 0.637.
        assert!(mi > 0.5, "mi = {mi}");
    }

    #[test]
    fn mutual_information_bounded_by_total_entropy() {
        let a = probs(vec![vec![0.6, 0.4]]);
        let b = probs(vec![vec![0.4, 0.6]]);
        let mi = mutual_information(&[a.clone(), b]);
        assert!(mi <= (2.0f64).ln() + 1e-9);
        assert!(mi >= 0.0);
    }

    #[test]
    fn ece_handles_confidence_one() {
        // conf = 1.0 must land in the last bin, not overflow.
        let p = probs(vec![vec![1.0, 0.0]]);
        let c = ece(&p, &[1], 10);
        assert_eq!(c.counts[9], 1);
        assert!((c.ece - 1.0).abs() < 1e-9, "confident and wrong: ECE 1");
    }
}
