//! Monte Carlo Dropout (MCD) Bayesian inference and uncertainty
//! metrics.
//!
//! Implements the algorithmic side of the paper: partial Bayesian
//! inference over the last `L` of `N` weight layers, `S`-sample
//! predictive averaging, and the evaluation metrics — accuracy, average
//! predictive entropy (aPE) and expected calibration error (ECE).
//!
//! Mask bits can come from a software PRNG ([`SoftwareMaskSource`]) or
//! from the bit-exact hardware Bernoulli sampler model
//! ([`HardwareMaskSource`], built on `bnn-rng`'s LFSR pipeline) so the
//! algorithmic experiments can run against the exact bit stream the
//! accelerator would produce.
//!
//! # Example
//!
//! ```
//! use bnn_mcd::{BayesConfig, McdPredictor, SoftwareMaskSource};
//! use bnn_nn::models;
//! use bnn_tensor::{Shape4, Tensor};
//!
//! let net = models::lenet5(10, 1, 28, 1);
//! let x = Tensor::zeros(Shape4::new(2, 1, 28, 28));
//! let cfg = BayesConfig::new(2, 5); // last 2 layers Bayesian, 5 samples
//! let mut src = SoftwareMaskSource::new(42);
//! let probs = McdPredictor::new(&net).predictive(&x, cfg, &mut src);
//! let row: f32 = probs.item(0).iter().sum();
//! assert!((row - 1.0).abs() < 1e-4, "predictive rows are distributions");
//! ```

// `deny` rather than `forbid`: the worker pool's lifetime erasure in
// `pool.rs` is the one audited exception (see its SAFETY comment);
// everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod chaos;
pub mod conformance;
mod metrics;
pub mod pool;
mod predict;
mod source;
pub mod uncertainty;

pub use backend::{
    predictive_batched_on, predictive_batched_pooled, predictive_on, predictive_pooled,
    sample_probs_on, sample_probs_pooled, serve_requests_on, serve_requests_pooled, BayesBackend,
    CostReport, FloatBackend, FusedBackend, FusedScratch, ModelCost, RequestResult, SeededRequest,
};
pub use chaos::{fault_at, ChaosBackend, ChaosConfig, Fault};
pub use conformance::{assert_backend_agrees, assert_chaos_agrees, Tolerance};
pub use metrics::{accuracy, avg_predictive_entropy, ece, mutual_information, nll, Calibration};
pub use pool::WorkerPool;
pub use predict::{
    active_sites, mean_probs, predictive_batched, BayesConfig, McdPredictor, ParallelConfig,
};
pub use source::{draw_site_masks, HardwareMaskSource, MaskSource, SoftwareMaskSource};
pub use uncertainty::Uncertainty;
