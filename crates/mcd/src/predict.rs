//! Monte Carlo predictive inference with software intermediate-layer
//! caching and a parallel sampling engine.
//!
//! The `S` Monte Carlo forward passes are embarrassingly parallel —
//! the insight both the DAC'21 accelerator and VIBNN bank sampler
//! units around. The software analogue here: all `S` mask sets are
//! drawn *serially* from the [`MaskSource`] (so the deterministic
//! stream is identical whatever the thread count), then the
//! Bayesian-suffix re-runs execute as contiguous chunks on a
//! persistent [`crate::WorkerPool`], each work unit owning one
//! reusable [`bnn_nn::ExecScratch`]. The predictive mean is reduced
//! in sample order, making every [`ParallelConfig`] schedule
//! bit-identical to the serial one.

use crate::backend::{predictive_batched_on, sample_probs_on, FloatBackend};
use crate::source::MaskSource;
use bnn_nn::Graph;
use bnn_tensor::Tensor;
use std::num::NonZeroUsize;

/// A partial Bayesian configuration: the last `l` of the network's `N`
/// weight layers are Bayesian and the predictive distribution averages
/// `s` Monte Carlo samples at dropout probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesConfig {
    /// Trailing Bayesian layers `L` (clamped to `N` at use).
    pub l: usize,
    /// Monte Carlo samples `S`.
    pub s: usize,
    /// Dropout probability (paper default 0.25).
    pub p: f32,
}

impl BayesConfig {
    /// Config with the paper's `p = 0.25`.
    pub fn new(l: usize, s: usize) -> BayesConfig {
        BayesConfig { l, s, p: 0.25 }
    }

    /// The paper's `S` sweep domain.
    pub fn s_domain() -> &'static [usize] {
        &[3, 4, 5, 6, 7, 8, 9, 10, 20, 50, 100]
    }

    /// The paper's `L` sweep domain for an `N`-layer network:
    /// `{1, N/3, N/2, 2N/3, N}` (deduplicated, ascending).
    pub fn l_domain(n: usize) -> Vec<usize> {
        let mut ls = vec![
            1,
            (n as f64 / 3.0).ceil() as usize,
            (n as f64 / 2.0).ceil() as usize,
            (2.0 * n as f64 / 3.0).ceil() as usize,
            n,
        ];
        ls.sort_unstable();
        ls.dedup();
        ls
    }
}

/// The engine's two-axis work schedule: how Monte Carlo samples and
/// input batches spread over a [`crate::WorkerPool`].
///
/// The mask stream is always drawn serially and chunk results join in
/// task order, so the prediction is bit-identical for every setting
/// of every field; this only selects how the work is executed.
///
/// * [`ParallelConfig::threads`] fans the `S` suffix re-runs of one
///   input batch out as contiguous sample chunks (the *sample axis*).
/// * [`ParallelConfig::batch_threads`] fans the outer loop of
///   `predictive_batched*` out over batch groups (the *batch axis*);
///   each group's samples then still use the sample axis, nested on
///   the same pool.
/// * [`ParallelConfig::chunk`] overrides the sample-chunk size
///   (default: an even split over `threads`), which also sets how
///   many samples a fusing backend stacks per GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Sample-axis fan-out for the per-sample suffix re-runs. `1` is
    /// the fully serial engine.
    pub threads: usize,
    /// Batch-axis fan-out for `predictive_batched*`'s outer loop over
    /// batch groups. `1` (the default everywhere) serves groups
    /// sequentially; larger values need a backend whose
    /// [`crate::BayesBackend::fork`] is implemented (all four in-tree
    /// substrates) and fall back to sequential otherwise.
    pub batch_threads: usize,
    /// Override for the number of samples per engine work unit.
    /// `None` splits the samples evenly over `threads`; `Some(c)`
    /// forces chunks of at most `c` samples (clamped to at least 1).
    pub chunk: Option<usize>,
}

impl ParallelConfig {
    /// One sample-axis worker per available CPU (the [`McdPredictor`]
    /// default); batch axis sequential.
    pub fn max_parallel() -> ParallelConfig {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        ParallelConfig {
            threads,
            batch_threads: 1,
            chunk: None,
        }
    }

    /// Serial sampling: no sample- or batch-level workers, and the
    /// per-sample suffix re-runs spawn no threads (convolution batch
    /// splitting is disabled there too). The one-time deterministic
    /// prefix pass may still split convolutions across two scoped
    /// workers for batches of at least four items.
    pub fn serial() -> ParallelConfig {
        ParallelConfig {
            threads: 1,
            batch_threads: 1,
            chunk: None,
        }
    }

    /// Exactly `threads` sample-axis workers (clamped to at least
    /// one); batch axis sequential.
    pub fn with_threads(threads: usize) -> ParallelConfig {
        ParallelConfig {
            threads: threads.max(1),
            batch_threads: 1,
            chunk: None,
        }
    }

    /// Set the batch-axis fan-out (clamped to at least one).
    pub fn with_batch_threads(mut self, batch_threads: usize) -> ParallelConfig {
        self.batch_threads = batch_threads.max(1);
        self
    }

    /// Force sample chunks of at most `chunk` samples (clamped to at
    /// least one).
    pub fn with_chunk(mut self, chunk: usize) -> ParallelConfig {
        self.chunk = Some(chunk.max(1));
        self
    }

    /// The validated form of this schedule: every axis at least one.
    ///
    /// The builder methods ([`ParallelConfig::with_threads`],
    /// [`ParallelConfig::with_batch_threads`],
    /// [`ParallelConfig::with_chunk`]) already clamp, but plain struct
    /// construction can still produce zero `threads`, `batch_threads`
    /// or `chunk` — meaningless schedules (there is no way to run
    /// samples on zero workers; the calling thread always
    /// participates). Every engine entry point normalizes through
    /// here, exactly once, so a zeroed field behaves as the serial
    /// setting of that axis instead of panicking deep in the engine.
    pub fn normalized(mut self) -> ParallelConfig {
        self.threads = self.threads.max(1);
        self.batch_threads = self.batch_threads.max(1);
        self.chunk = self.chunk.map(|c| c.max(1));
        self
    }

    /// Resident workers a dedicated [`crate::WorkerPool`] needs so
    /// this schedule never waits on a busy worker: full two-axis
    /// concurrency minus the calling thread (which always helps). The
    /// serial default wants zero — a pool that executes inline.
    pub fn pool_workers(&self) -> usize {
        let n = self.normalized();
        (n.threads * n.batch_threads).saturating_sub(1)
    }
}

impl Default for ParallelConfig {
    /// [`ParallelConfig::serial`] — deterministic, spawns nothing.
    /// Builder APIs (`Session`) compose from this predictable default;
    /// opt into threads with [`ParallelConfig::max_parallel`] or
    /// [`ParallelConfig::with_threads`]. (Results are bit-identical
    /// either way; only wall-clock changes.)
    fn default() -> ParallelConfig {
        ParallelConfig::serial()
    }
}

/// Active-site flags for "last `l` of `n` sites".
pub fn active_sites(n: usize, l: usize) -> Vec<bool> {
    let l = l.min(n);
    let mut v = vec![false; n];
    for site in v.iter_mut().skip(n - l) {
        *site = true;
    }
    v
}

/// Runs MCD predictive inference over a graph.
///
/// The predictor implements the *software analogue* of the paper's
/// intermediate-layer caching: the deterministic prefix (everything
/// before the first active MCD site) is executed once per input and
/// only the Bayesian suffix is re-run for each of the `S` samples.
#[derive(Debug)]
pub struct McdPredictor<'g> {
    graph: &'g Graph,
    parallel: ParallelConfig,
}

impl<'g> McdPredictor<'g> {
    /// Create a predictor for a graph, parallel over all CPUs by
    /// default (see [`ParallelConfig`]; results do not depend on the
    /// thread count).
    pub fn new(graph: &'g Graph) -> McdPredictor<'g> {
        McdPredictor {
            graph,
            parallel: ParallelConfig::max_parallel(),
        }
    }

    /// Override the sampling-engine parallelism
    /// ([`ParallelConfig::serial`] restores the old engine).
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> McdPredictor<'g> {
        self.parallel = parallel;
        self
    }

    /// Per-sample softmax probabilities: `s` tensors of shape `(n, k)`.
    ///
    /// Exposing the individual passes lets callers evaluate *every*
    /// smaller `S` from one run (the paper's `S` sweep) by averaging
    /// prefixes of the returned list.
    ///
    /// Delegates to the generic engine
    /// ([`crate::backend::sample_probs_on`]) over a [`FloatBackend`] —
    /// the sampling logic exists exactly once, shared with the int8
    /// and accelerator backends.
    pub fn sample_probs(
        &self,
        x: &Tensor,
        cfg: BayesConfig,
        src: &mut dyn MaskSource,
    ) -> Vec<Tensor> {
        let mut backend = FloatBackend::new(self.graph);
        sample_probs_on(&mut backend, x, cfg, src, self.parallel)
    }

    /// Predictive distribution `(n, k)`: the mean of the per-sample
    /// softmax probabilities (the paper's
    /// `1/S Σ p(y|x, M_s)`).
    pub fn predictive(&self, x: &Tensor, cfg: BayesConfig, src: &mut dyn MaskSource) -> Tensor {
        let passes = self.sample_probs(x, cfg, src);
        mean_probs(&passes, passes.len())
    }
}

/// Average the first `s` per-pass probability tensors.
///
/// # Panics
///
/// Panics if `s == 0` or `s > passes.len()`.
pub fn mean_probs(passes: &[Tensor], s: usize) -> Tensor {
    assert!(s > 0 && s <= passes.len(), "invalid sample count {s}");
    let shape = passes[0].shape();
    let mut acc = Tensor::zeros(shape);
    for p in &passes[..s] {
        bnn_tensor::add_inplace(acc.as_mut_slice(), p.as_slice());
    }
    let inv = 1.0 / s as f32;
    acc.map_inplace(|v| v * inv);
    acc
}

/// Convenience: predictive over a dataset in batches, returning an
/// `(n, k)` tensor of probabilities.
pub fn predictive_batched(
    graph: &Graph,
    xs: &Tensor,
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
    batch: usize,
) -> Tensor {
    let mut backend = FloatBackend::new(graph);
    predictive_batched_on(
        &mut backend,
        xs,
        cfg,
        src,
        ParallelConfig::max_parallel(),
        batch,
    )
    .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{MaskSource, SoftwareMaskSource};
    use bnn_nn::models;
    use bnn_tensor::{softmax_rows, Shape4};

    #[test]
    fn l_domain_matches_paper() {
        assert_eq!(BayesConfig::l_domain(18), vec![1, 6, 9, 12, 18]);
        assert_eq!(BayesConfig::l_domain(11), vec![1, 4, 6, 8, 11]);
        assert_eq!(BayesConfig::l_domain(5), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn active_sites_trailing() {
        assert_eq!(active_sites(5, 2), vec![false, false, false, true, true]);
        assert_eq!(active_sites(3, 99), vec![true, true, true]);
    }

    #[test]
    fn predictive_rows_are_distributions() {
        let net = models::lenet5(10, 1, 16, 3);
        let x = Tensor::full(Shape4::new(3, 1, 16, 16), 0.1);
        let mut src = SoftwareMaskSource::new(1);
        let probs = McdPredictor::new(&net).predictive(&x, BayesConfig::new(3, 4), &mut src);
        for i in 0..3 {
            let s: f32 = probs.item(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn ic_path_matches_full_forward() {
        // Prefix caching must give bit-identical logits to running the
        // whole network with the same masks.
        let net = models::lenet5(10, 1, 16, 5);
        let x = Tensor::full(Shape4::new(2, 1, 16, 16), 0.2);
        let cfg = BayesConfig::new(2, 3);
        let mut src_a = SoftwareMaskSource::new(7);
        let mut src_b = SoftwareMaskSource::new(7);

        let fast = McdPredictor::new(&net).sample_probs(&x, cfg, &mut src_a);

        // Reference: full forward per pass with the same mask stream.
        let active = active_sites(net.n_sites(), cfg.l);
        let channels = net.site_channels(x.shape());
        for f in fast.iter().take(cfg.s) {
            let masks = src_b.next_masks(&active, &channels, cfg.p);
            let mut logits = net.forward(&x, &masks);
            let s = logits.shape();
            softmax_rows(logits.as_mut_slice(), s.n, s.item_len());
            assert!(
                f.max_abs_diff(&logits) < 1e-6,
                "IC path diverged from full forward"
            );
        }
    }

    #[test]
    fn zero_l_gives_deterministic_predictive() {
        let net = models::lenet5(10, 1, 16, 5);
        let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.3);
        let mut src = SoftwareMaskSource::new(2);
        let passes = McdPredictor::new(&net).sample_probs(
            &x,
            BayesConfig {
                l: 0,
                s: 4,
                p: 0.25,
            },
            &mut src,
        );
        for p in &passes[1..] {
            assert_eq!(p.as_slice(), passes[0].as_slice());
        }
    }

    #[test]
    fn zeroed_schedule_axes_normalize_to_serial() {
        // Plain struct construction bypasses the clamping builders;
        // `normalized` is the one place that fixes it up.
        let zeroed = ParallelConfig {
            threads: 0,
            batch_threads: 0,
            chunk: Some(0),
        };
        let n = zeroed.normalized();
        assert_eq!(n.threads, 1);
        assert_eq!(n.batch_threads, 1);
        assert_eq!(n.chunk, Some(1));
        assert_eq!(zeroed.pool_workers(), 0, "zeroed axes want no workers");
        assert_eq!(
            ParallelConfig::serial().normalized(),
            ParallelConfig::serial()
        );

        // The engine serves a zeroed schedule bit-identically to the
        // serial one instead of panicking.
        let net = models::lenet5(10, 1, 16, 2);
        let x = Tensor::full(Shape4::new(2, 1, 16, 16), 0.1);
        let cfg = BayesConfig::new(2, 3);
        let mut src = SoftwareMaskSource::new(4);
        let want = McdPredictor::new(&net)
            .with_parallelism(ParallelConfig::serial())
            .predictive(&x, cfg, &mut src);
        let mut src = SoftwareMaskSource::new(4);
        let got = McdPredictor::new(&net)
            .with_parallelism(zeroed)
            .predictive(&x, cfg, &mut src);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn mean_probs_prefix_average() {
        let a = Tensor::from_vec(Shape4::vec(1, 2), vec![1.0, 0.0]);
        let b = Tensor::from_vec(Shape4::vec(1, 2), vec![0.0, 1.0]);
        let m = mean_probs(&[a, b], 2);
        assert_eq!(m.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn batched_predictive_matches_single() {
        let net = models::lenet5(10, 1, 16, 8);
        let xs = Tensor::full(Shape4::new(5, 1, 16, 16), 0.1);
        let cfg = BayesConfig::new(1, 2);
        // With batch = n the masks align; just check shape + rows.
        let mut src = SoftwareMaskSource::new(3);
        let probs = predictive_batched(&net, &xs, cfg, &mut src, 5);
        assert_eq!(probs.shape(), Shape4::vec(5, 10));
    }
}
