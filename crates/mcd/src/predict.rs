//! Monte Carlo predictive inference with software intermediate-layer
//! caching and a parallel sampling engine.
//!
//! The `S` Monte Carlo forward passes are embarrassingly parallel —
//! the insight both the DAC'21 accelerator and VIBNN bank sampler
//! units around. The software analogue here: all `S` mask sets are
//! drawn *serially* from the [`MaskSource`] (so the deterministic
//! stream is identical whatever the thread count), then the
//! Bayesian-suffix re-runs execute on a scoped thread team, each
//! worker owning one reusable [`bnn_nn::ExecScratch`]. The predictive
//! mean is reduced in sample order, making the parallel path
//! bit-identical to the serial one.

use crate::source::MaskSource;
use bnn_nn::{ExecScratch, Graph, MaskSet, Op};
use bnn_tensor::{softmax_rows, Shape4, Tensor};
use std::num::NonZeroUsize;

/// A partial Bayesian configuration: the last `l` of the network's `N`
/// weight layers are Bayesian and the predictive distribution averages
/// `s` Monte Carlo samples at dropout probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesConfig {
    /// Trailing Bayesian layers `L` (clamped to `N` at use).
    pub l: usize,
    /// Monte Carlo samples `S`.
    pub s: usize,
    /// Dropout probability (paper default 0.25).
    pub p: f32,
}

impl BayesConfig {
    /// Config with the paper's `p = 0.25`.
    pub fn new(l: usize, s: usize) -> BayesConfig {
        BayesConfig { l, s, p: 0.25 }
    }

    /// The paper's `S` sweep domain.
    pub fn s_domain() -> &'static [usize] {
        &[3, 4, 5, 6, 7, 8, 9, 10, 20, 50, 100]
    }

    /// The paper's `L` sweep domain for an `N`-layer network:
    /// `{1, N/3, N/2, 2N/3, N}` (deduplicated, ascending).
    pub fn l_domain(n: usize) -> Vec<usize> {
        let mut ls = vec![
            1,
            (n as f64 / 3.0).ceil() as usize,
            (n as f64 / 2.0).ceil() as usize,
            (2.0 * n as f64 / 3.0).ceil() as usize,
            n,
        ];
        ls.sort_unstable();
        ls.dedup();
        ls
    }
}

/// How the predictor spreads Monte Carlo samples over threads.
///
/// The mask stream is always drawn serially, so the prediction is
/// bit-identical for every `threads` value; this only selects how the
/// suffix re-runs are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for the per-sample suffix re-runs. `1` is the
    /// fully serial engine.
    pub threads: usize,
}

impl ParallelConfig {
    /// One worker per available CPU (the default).
    pub fn max_parallel() -> ParallelConfig {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        ParallelConfig { threads }
    }

    /// Serial sampling: no sample-level workers, and the per-sample
    /// suffix re-runs spawn no threads (convolution batch splitting
    /// is disabled there too). The one-time deterministic prefix pass
    /// may still split convolutions across two scoped workers for
    /// batches of at least four items.
    pub fn serial() -> ParallelConfig {
        ParallelConfig { threads: 1 }
    }

    /// Exactly `threads` workers (clamped to at least one).
    pub fn with_threads(threads: usize) -> ParallelConfig {
        ParallelConfig {
            threads: threads.max(1),
        }
    }
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig::max_parallel()
    }
}

/// Active-site flags for "last `l` of `n` sites".
pub fn active_sites(n: usize, l: usize) -> Vec<bool> {
    let l = l.min(n);
    let mut v = vec![false; n];
    for site in v.iter_mut().skip(n - l) {
        *site = true;
    }
    v
}

/// Runs MCD predictive inference over a graph.
///
/// The predictor implements the *software analogue* of the paper's
/// intermediate-layer caching: the deterministic prefix (everything
/// before the first active MCD site) is executed once per input and
/// only the Bayesian suffix is re-run for each of the `S` samples.
#[derive(Debug)]
pub struct McdPredictor<'g> {
    graph: &'g Graph,
    parallel: ParallelConfig,
}

impl<'g> McdPredictor<'g> {
    /// Create a predictor for a graph, parallel over all CPUs by
    /// default (see [`ParallelConfig`]; results do not depend on the
    /// thread count).
    pub fn new(graph: &'g Graph) -> McdPredictor<'g> {
        McdPredictor {
            graph,
            parallel: ParallelConfig::default(),
        }
    }

    /// Override the sampling-engine parallelism
    /// ([`ParallelConfig::serial`] restores the old engine).
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> McdPredictor<'g> {
        self.parallel = parallel;
        self
    }

    /// Node id of the first active MCD site, if any.
    fn first_active_site_node(&self, active: &[bool]) -> Option<usize> {
        self.graph
            .nodes()
            .iter()
            .enumerate()
            .find_map(|(id, node)| match node.op {
                Op::McdSite { site, .. } if active.get(site.0).copied().unwrap_or(false) => {
                    Some(id)
                }
                _ => None,
            })
    }

    /// Per-sample softmax probabilities: `s` tensors of shape `(n, k)`.
    ///
    /// Exposing the individual passes lets callers evaluate *every*
    /// smaller `S` from one run (the paper's `S` sweep) by averaging
    /// prefixes of the returned list.
    pub fn sample_probs(
        &self,
        x: &Tensor,
        cfg: BayesConfig,
        src: &mut dyn MaskSource,
    ) -> Vec<Tensor> {
        assert!(cfg.s > 0, "at least one Monte Carlo sample required");
        let n_sites = self.graph.n_sites();
        let active = active_sites(n_sites, cfg.l);
        let channels = self.graph.site_channels(x.shape());
        let first = self.first_active_site_node(&active);

        let softmaxed = |mut logits: Tensor| -> Tensor {
            let s = logits.shape();
            let (rows, cols) = (s.n, s.item_len());
            softmax_rows(logits.as_mut_slice(), rows, cols);
            logits
        };

        match first {
            None => {
                // No Bayesian layer: the predictive is deterministic.
                let probs = softmaxed(self.graph.forward(x, &MaskSet::none()));
                vec![probs; cfg.s]
            }
            Some(site_node) => {
                // IC: run the prefix once, re-run the suffix per sample.
                let prefix = self.graph.forward_full(x, &MaskSet::none());
                // All mask sets are drawn serially up front so the
                // deterministic stream never depends on thread timing.
                let mask_sets: Vec<MaskSet> = (0..cfg.s)
                    .map(|_| src.next_masks(&active, &channels, cfg.p))
                    .collect();
                let run = |masks: &MaskSet, scratch: &mut ExecScratch| {
                    softmaxed(
                        self.graph
                            .forward_from_with(&prefix, site_node - 1, masks, scratch),
                    )
                };
                let threads = self.parallel.threads.clamp(1, cfg.s);
                if threads == 1 {
                    // Strictly serial: suffix-sized scratch, no conv
                    // batch splitting, no threads anywhere.
                    let mut scratch = self
                        .graph
                        .scratch_after(x.shape(), site_node - 1)
                        .serial_conv();
                    mask_sets.iter().map(|m| run(m, &mut scratch)).collect()
                } else {
                    // Contiguous sample chunks per worker; joining in
                    // spawn order keeps the samples in stream order.
                    let chunk = cfg.s.div_ceil(threads);
                    let run = &run;
                    std::thread::scope(|scope| {
                        let workers: Vec<_> = mask_sets
                            .chunks(chunk)
                            .map(|ms| {
                                scope.spawn(move || {
                                    // Sample-level parallelism owns the
                                    // host; per-conv batch splitting on
                                    // top would only oversubscribe it.
                                    // Scratch covers the suffix only.
                                    let mut scratch = self
                                        .graph
                                        .scratch_after(x.shape(), site_node - 1)
                                        .serial_conv();
                                    ms.iter().map(|m| run(m, &mut scratch)).collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        workers
                            .into_iter()
                            .flat_map(|w| w.join().expect("sampler thread panicked"))
                            .collect()
                    })
                }
            }
        }
    }

    /// Predictive distribution `(n, k)`: the mean of the per-sample
    /// softmax probabilities (the paper's
    /// `1/S Σ p(y|x, M_s)`).
    pub fn predictive(&self, x: &Tensor, cfg: BayesConfig, src: &mut dyn MaskSource) -> Tensor {
        let passes = self.sample_probs(x, cfg, src);
        mean_probs(&passes, passes.len())
    }
}

/// Average the first `s` per-pass probability tensors.
///
/// # Panics
///
/// Panics if `s == 0` or `s > passes.len()`.
pub fn mean_probs(passes: &[Tensor], s: usize) -> Tensor {
    assert!(s > 0 && s <= passes.len(), "invalid sample count {s}");
    let shape = passes[0].shape();
    let mut acc = Tensor::zeros(shape);
    for p in &passes[..s] {
        bnn_tensor::add_inplace(acc.as_mut_slice(), p.as_slice());
    }
    let inv = 1.0 / s as f32;
    acc.map_inplace(|v| v * inv);
    acc
}

/// Convenience: predictive over a dataset in batches, returning an
/// `(n, k)` tensor of probabilities.
pub fn predictive_batched(
    graph: &Graph,
    xs: &Tensor,
    cfg: BayesConfig,
    src: &mut dyn MaskSource,
    batch: usize,
) -> Tensor {
    assert!(batch > 0, "batch must be non-zero");
    let s = xs.shape();
    let pred = McdPredictor::new(graph);
    let mut out: Option<Tensor> = None;
    let mut row = 0usize;
    while row < s.n {
        let take = batch.min(s.n - row);
        let mut bx = Tensor::zeros(Shape4::new(take, s.c, s.h, s.w));
        for i in 0..take {
            bx.item_mut(i).copy_from_slice(xs.item(row + i));
        }
        let probs = pred.predictive(&bx, cfg, src);
        let k = probs.shape().item_len();
        let all = out.get_or_insert_with(|| Tensor::zeros(Shape4::vec(s.n, k)));
        for i in 0..take {
            all.item_mut(row + i).copy_from_slice(probs.item(i));
        }
        row += take;
    }
    out.expect("dataset is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SoftwareMaskSource;
    use bnn_nn::models;

    #[test]
    fn l_domain_matches_paper() {
        assert_eq!(BayesConfig::l_domain(18), vec![1, 6, 9, 12, 18]);
        assert_eq!(BayesConfig::l_domain(11), vec![1, 4, 6, 8, 11]);
        assert_eq!(BayesConfig::l_domain(5), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn active_sites_trailing() {
        assert_eq!(active_sites(5, 2), vec![false, false, false, true, true]);
        assert_eq!(active_sites(3, 99), vec![true, true, true]);
    }

    #[test]
    fn predictive_rows_are_distributions() {
        let net = models::lenet5(10, 1, 16, 3);
        let x = Tensor::full(Shape4::new(3, 1, 16, 16), 0.1);
        let mut src = SoftwareMaskSource::new(1);
        let probs = McdPredictor::new(&net).predictive(&x, BayesConfig::new(3, 4), &mut src);
        for i in 0..3 {
            let s: f32 = probs.item(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn ic_path_matches_full_forward() {
        // Prefix caching must give bit-identical logits to running the
        // whole network with the same masks.
        let net = models::lenet5(10, 1, 16, 5);
        let x = Tensor::full(Shape4::new(2, 1, 16, 16), 0.2);
        let cfg = BayesConfig::new(2, 3);
        let mut src_a = SoftwareMaskSource::new(7);
        let mut src_b = SoftwareMaskSource::new(7);

        let fast = McdPredictor::new(&net).sample_probs(&x, cfg, &mut src_a);

        // Reference: full forward per pass with the same mask stream.
        let active = active_sites(net.n_sites(), cfg.l);
        let channels = net.site_channels(x.shape());
        for f in fast.iter().take(cfg.s) {
            let masks = src_b.next_masks(&active, &channels, cfg.p);
            let mut logits = net.forward(&x, &masks);
            let s = logits.shape();
            softmax_rows(logits.as_mut_slice(), s.n, s.item_len());
            assert!(
                f.max_abs_diff(&logits) < 1e-6,
                "IC path diverged from full forward"
            );
        }
    }

    #[test]
    fn zero_l_gives_deterministic_predictive() {
        let net = models::lenet5(10, 1, 16, 5);
        let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.3);
        let mut src = SoftwareMaskSource::new(2);
        let passes = McdPredictor::new(&net).sample_probs(
            &x,
            BayesConfig {
                l: 0,
                s: 4,
                p: 0.25,
            },
            &mut src,
        );
        for p in &passes[1..] {
            assert_eq!(p.as_slice(), passes[0].as_slice());
        }
    }

    #[test]
    fn mean_probs_prefix_average() {
        let a = Tensor::from_vec(Shape4::vec(1, 2), vec![1.0, 0.0]);
        let b = Tensor::from_vec(Shape4::vec(1, 2), vec![0.0, 1.0]);
        let m = mean_probs(&[a, b], 2);
        assert_eq!(m.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn batched_predictive_matches_single() {
        let net = models::lenet5(10, 1, 16, 8);
        let xs = Tensor::full(Shape4::new(5, 1, 16, 16), 0.1);
        let cfg = BayesConfig::new(1, 2);
        // With batch = n the masks align; just check shape + rows.
        let mut src = SoftwareMaskSource::new(3);
        let probs = predictive_batched(&net, &xs, cfg, &mut src, 5);
        assert_eq!(probs.shape(), Shape4::vec(5, 10));
    }
}
