//! Backend conformance harness: agreement coverage for any
//! [`BayesBackend`] in one line.
//!
//! Every execution substrate must honour the same engine contract —
//! consume the seeded mask stream identically, be bit-identical to
//! itself at any thread count, and serve batched exactly like
//! unbatched. [`assert_backend_agrees`] checks all of that for a
//! candidate backend against a reference backend under a single shared
//! seed, with the agreement strictness chosen per pair:
//!
//! * [`Tolerance::BitExact`] for substrates that are exact
//!   re-schedulings of the reference (fused vs. float, accelerator
//!   vs. int8) — not a single ulp may move;
//! * [`Tolerance::L1`] for substrates with intrinsic numeric drift
//!   (int8 vs. float quantization error).
//!
//! Checks 1–6 live in [`assert_backend_agrees`]; check 7 — chaos
//! transparency, fault containment and replayability under the
//! [`crate::chaos::ChaosBackend`] fault injector — lives in
//! [`assert_chaos_agrees`] (it builds backends through a factory
//! because the wrapper takes ownership).
//!
//! The facade's `tests/backends.rs` runs this suite over float, fused,
//! int8 and accelerator; a future `impl BayesBackend` plugs in with
//! one call:
//!
//! ```
//! use bnn_mcd::conformance::{assert_backend_agrees, Tolerance};
//! use bnn_mcd::{BayesConfig, FloatBackend, FusedBackend};
//! use bnn_nn::models;
//! use bnn_tensor::{Shape4, Tensor};
//!
//! let net = models::lenet5(10, 1, 16, 2);
//! let x = Tensor::full(Shape4::new(2, 1, 16, 16), 0.1);
//! assert_backend_agrees(
//!     &mut FloatBackend::new(&net),
//!     &mut FusedBackend::new(&net),
//!     &x,
//!     BayesConfig::new(2, 6),
//!     7,
//!     Tolerance::BitExact,
//! );
//! ```

use crate::backend::{
    predictive_batched_on, predictive_batched_pooled, predictive_on, predictive_pooled,
    serve_requests_pooled, BayesBackend, SeededRequest,
};
use crate::chaos::{fault_at, ChaosBackend, ChaosConfig, Fault};
use crate::pool::WorkerPool;
use crate::predict::{BayesConfig, ParallelConfig};
use crate::source::SoftwareMaskSource;
use bnn_tensor::Tensor;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How closely a candidate backend must agree with the reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Byte-equal probabilities: the candidate is an exact
    /// re-scheduling of the reference computation.
    BitExact,
    /// Per-item L1 distance below the bound: the candidate carries
    /// intrinsic numeric drift (e.g. quantization).
    L1(f32),
}

/// The thread counts every candidate is exercised at (the engine's
/// bit-identical-at-any-parallelism guarantee is asserted between
/// them).
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn check_close(want: &Tensor, got: &Tensor, tol: Tolerance, what: &str) {
    assert_eq!(want.shape(), got.shape(), "{what}: shape mismatch");
    match tol {
        Tolerance::BitExact => {
            assert_eq!(
                want.as_slice(),
                got.as_slice(),
                "{what}: probabilities moved"
            );
        }
        Tolerance::L1(bound) => {
            for i in 0..want.shape().n {
                let l1: f32 = want
                    .item(i)
                    .iter()
                    .zip(got.item(i))
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(l1 < bound, "{what}: item {i} drifted, L1 = {l1} >= {bound}");
            }
        }
    }
}

/// Run the conformance suite: `candidate` against `reference` on input
/// `x` under one shared seeded mask stream.
///
/// Checks performed:
///
/// 1. *Agreement* — the candidate's predictive matches the reference's
///    (serial) within `tol`, at every thread count in `{1, 4}`.
/// 2. *Thread invariance* — the candidate's predictions at 1 and 4
///    threads are byte-equal regardless of `tol` (the engine contract
///    extends to every backend, including fused chunking).
/// 3. *Batched serving* — `predictive_batched` with `batch = 1` agrees
///    across backends within `tol`, is thread-invariant, and — for
///    single-item inputs — is byte-equal to the unbatched predictive.
/// 4. *Cost accounting* — both backends report the configured sample
///    count.
/// 5. *Pooled engine* — one long-lived [`WorkerPool`] per pool size in
///    `{1, 4}` serves repeated predictive calls, a sample-parallel
///    split, an explicitly chunked split and a batch-parallel split
///    (`batch_threads = 4`, `batch = 1`), all byte-equal to the
///    candidate's serial predictions.
/// 6. *Coalescing invariance* — the request-serving path
///    ([`serve_requests_pooled`], the `bnn-serve` engine hook): a
///    [`SeededRequest`] carrying the shared seed is byte-equal to the
///    candidate's solo predictive whether served alone or coalesced
///    between neighbors with foreign seeds, under both the sequential
///    and the batch-parallel request schedule, at pool sizes `{1, 4}`.
///
/// The input's batch size must satisfy both backends' constraints
/// (pass a single-item `x` when the accelerator is involved).
///
/// # Panics
///
/// Panics (with a message naming the backends and the failing check)
/// on any disagreement.
pub fn assert_backend_agrees<R: BayesBackend + Send, C: BayesBackend + Send>(
    reference: &mut R,
    candidate: &mut C,
    x: &Tensor,
    cfg: BayesConfig,
    seed: u64,
    tol: Tolerance,
) {
    let pair = format!("{} vs {}", candidate.name(), reference.name());

    let (r_probs, r_cost) = predictive_on(
        reference,
        x,
        cfg,
        &mut SoftwareMaskSource::new(seed),
        ParallelConfig::serial(),
    );
    assert_eq!(
        r_cost.samples,
        cfg.s,
        "{}: reference cost lost samples",
        reference.name()
    );

    let mut per_threads = Vec::new();
    for threads in THREAD_COUNTS {
        let (c_probs, c_cost) = predictive_on(
            candidate,
            x,
            cfg,
            &mut SoftwareMaskSource::new(seed),
            ParallelConfig::with_threads(threads),
        );
        check_close(
            &r_probs,
            &c_probs,
            tol,
            &format!("{pair} (threads={threads}, unbatched)"),
        );
        assert_eq!(
            c_cost.samples,
            cfg.s,
            "{}: candidate cost lost samples",
            candidate.name()
        );
        per_threads.push(c_probs);
    }
    assert_eq!(
        per_threads[0].as_slice(),
        per_threads[1].as_slice(),
        "{}: thread fan-out changed the prediction",
        candidate.name()
    );

    // Batched serving, one item at a time — the deployment shape every
    // backend (including the batch-1 accelerator) supports.
    let (r_batched, _) = predictive_batched_on(
        reference,
        x,
        cfg,
        &mut SoftwareMaskSource::new(seed),
        ParallelConfig::serial(),
        1,
    );
    let mut batched = Vec::new();
    for threads in THREAD_COUNTS {
        let (c_batched, _) = predictive_batched_on(
            candidate,
            x,
            cfg,
            &mut SoftwareMaskSource::new(seed),
            ParallelConfig::with_threads(threads),
            1,
        );
        check_close(
            &r_batched,
            &c_batched,
            tol,
            &format!("{pair} (threads={threads}, batched)"),
        );
        batched.push(c_batched);
    }
    assert_eq!(
        batched[0].as_slice(),
        batched[1].as_slice(),
        "{}: thread fan-out changed the batched prediction",
        candidate.name()
    );
    if x.shape().n == 1 {
        assert_eq!(
            batched[0].as_slice(),
            per_threads[0].as_slice(),
            "{}: batched serving diverged from unbatched",
            candidate.name()
        );
    }

    // Pooled engine: one long-lived pool per size, serving repeated
    // calls and both schedule axes — every prediction must be
    // byte-equal to the candidate's own serial results above.
    for workers in [1usize, 4] {
        let pool = WorkerPool::new(workers);
        let repeats = if workers == 1 { 1 } else { 2 };
        for repeat in 0..repeats {
            let (p_probs, _) = predictive_pooled(
                candidate,
                x,
                cfg,
                &mut SoftwareMaskSource::new(seed),
                ParallelConfig::with_threads(4),
                &pool,
            );
            assert_eq!(
                p_probs.as_slice(),
                per_threads[0].as_slice(),
                "{}: pooled sample-parallel call {repeat} on {workers} worker(s) \
                 changed the prediction",
                candidate.name()
            );
        }
        let (chunked, _) = predictive_pooled(
            candidate,
            x,
            cfg,
            &mut SoftwareMaskSource::new(seed),
            ParallelConfig::with_threads(2).with_chunk(1),
            &pool,
        );
        assert_eq!(
            chunked.as_slice(),
            per_threads[0].as_slice(),
            "{}: pooled chunked split on {workers} worker(s) changed the prediction",
            candidate.name()
        );
        let (batch_par, _) = predictive_batched_pooled(
            candidate,
            x,
            cfg,
            &mut SoftwareMaskSource::new(seed),
            ParallelConfig::serial().with_batch_threads(4),
            1,
            &pool,
        );
        assert_eq!(
            batch_par.as_slice(),
            batched[0].as_slice(),
            "{}: pooled batch-parallel split on {workers} worker(s) changed the prediction",
            candidate.name()
        );

        // Coalescing invariance: the request with this suite's seed
        // must come back byte-equal to the candidate's solo predictive
        // above, alone or sandwiched between foreign-seeded neighbors,
        // on either request schedule.
        let solo = serve_requests_pooled(
            candidate,
            &[SeededRequest { x, seed }],
            cfg,
            ParallelConfig::serial(),
            &pool,
        );
        assert_eq!(
            solo[0].probs.as_slice(),
            per_threads[0].as_slice(),
            "{}: request-path solo serving on {workers} worker(s) diverged from predictive",
            candidate.name()
        );
        let neighbors = [
            SeededRequest {
                x,
                seed: seed.wrapping_add(101),
            },
            SeededRequest { x, seed },
            SeededRequest {
                x,
                seed: seed.wrapping_add(202),
            },
        ];
        let mut per_schedule = Vec::new();
        for parallel in [
            ParallelConfig::serial(),
            ParallelConfig::serial().with_batch_threads(4),
        ] {
            let coalesced = serve_requests_pooled(candidate, &neighbors, cfg, parallel, &pool);
            assert_eq!(
                coalesced[1].probs.as_slice(),
                per_threads[0].as_slice(),
                "{}: coalescing with neighbors moved the prediction \
                 (batch_threads={}, {workers} worker(s))",
                candidate.name(),
                parallel.batch_threads
            );
            per_schedule.push(coalesced);
        }
        // The neighbors themselves are schedule-invariant too.
        for (i, (a, b)) in per_schedule[0].iter().zip(&per_schedule[1]).enumerate() {
            assert_eq!(
                a.probs.as_slice(),
                b.probs.as_slice(),
                "{}: request schedule moved coalesced request {i} ({workers} worker(s))",
                candidate.name()
            );
        }
    }
}

/// Conformance check 7 — *chaos transparency and containment* — for
/// any backend, via a factory (the [`ChaosBackend`] wrapper takes
/// ownership of its inner backend, so the harness builds instances as
/// it needs them).
///
/// Three properties are asserted, all on the request-serving path the
/// `bnn-serve` dispatcher uses ([`serve_requests_pooled`], sequential
/// schedule — the schedule under which fault indices map 1:1 onto
/// requests):
///
/// 1. *Transparency* — a [`ChaosBackend`] with faults disabled
///    ([`ChaosConfig::disabled`]) is **byte-equal** to the bare
///    backend, request for request.
/// 2. *Containment* — under an active schedule mixing panics and
///    delays, a panic-faulted micro-batch fails (panics, here caught
///    like the server's quarantine catches them) while every
///    *non-faulted* request — including delayed ones — stays
///    byte-equal to the fault-free run.
/// 3. *Replayability* — the observed fault positions equal the pure
///    [`fault_at`] schedule, and a second run under the same chaos
///    seed reproduces outcomes bit-for-bit.
///
/// The active chaos schedule is derived from `seed` by a bounded
/// deterministic search so it always contains at least one panic, one
/// delay and one clean call — no flakiness, no degenerate all-fault
/// or no-fault schedules.
///
/// # Panics
///
/// Panics (naming the failing property) on any violation.
pub fn assert_chaos_agrees<B, F>(mut make: F, x: &Tensor, cfg: BayesConfig, seed: u64)
where
    B: BayesBackend + Send,
    F: FnMut() -> B,
{
    let pool = WorkerPool::new(0);
    let n_requests = 6u64;
    let requests: Vec<SeededRequest> = (0..n_requests)
        .map(|i| SeededRequest {
            x,
            seed: seed.wrapping_add(i),
        })
        .collect();
    let mut bare = make();
    let b_name = bare.name();
    // Fault-free reference, bare backend.
    let want: Vec<Tensor> =
        serve_requests_pooled(&mut bare, &requests, cfg, ParallelConfig::serial(), &pool)
            .into_iter()
            .map(|r| r.probs)
            .collect();

    // 1. Transparency: disabled chaos is byte-equal to bare.
    let mut quiet = ChaosBackend::new(make(), ChaosConfig::disabled(seed));
    let got = serve_requests_pooled(&mut quiet, &requests, cfg, ParallelConfig::serial(), &pool);
    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        assert_eq!(
            w.as_slice(),
            g.probs.as_slice(),
            "{b_name}: disabled chaos moved request {i} (transparency)"
        );
    }
    assert_eq!(
        quiet.calls(),
        n_requests,
        "{b_name}: chaos call accounting lost requests"
    );

    // 2 + 3. Active schedule: search (deterministically, from
    // `seed`) for one holding all three fault kinds over the run.
    let chaos = (0..10_000u64)
        .map(|k| ChaosConfig::new(seed.wrapping_add(k), 0.35, 0.35))
        .find(|c| {
            let s = c.schedule(n_requests);
            s.contains(&Fault::Panic) && s.contains(&Fault::Delay) && s.contains(&Fault::None)
        })
        .expect("a mixed fault schedule exists within the search bound");
    let mut run = || -> Vec<Option<Tensor>> {
        let mut faulty = ChaosBackend::new(make(), chaos);
        requests
            .iter()
            .map(|req| {
                // One request per micro-batch, panics quarantined
                // exactly like the serving dispatcher does.
                catch_unwind(AssertUnwindSafe(|| {
                    serve_requests_pooled(
                        &mut faulty,
                        std::slice::from_ref(req),
                        cfg,
                        ParallelConfig::serial(),
                        &pool,
                    )
                    .pop()
                    .expect("one reply per request")
                    .probs
                }))
                .ok()
            })
            .collect()
    };
    let first = run();
    for (i, outcome) in first.iter().enumerate() {
        let scheduled = fault_at(&chaos, i as u64);
        match outcome {
            None => assert_eq!(
                scheduled,
                Fault::Panic,
                "{b_name}: request {i} failed off-schedule (containment)"
            ),
            Some(probs) => {
                assert_ne!(
                    scheduled,
                    Fault::Panic,
                    "{b_name}: request {i} survived a scheduled panic (containment)"
                );
                assert_eq!(
                    probs.as_slice(),
                    want[i].as_slice(),
                    "{b_name}: non-faulted request {i} diverged from the \
                     fault-free run (containment)"
                );
            }
        }
    }
    let second = run();
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        match (a, b) {
            (None, None) => {}
            (Some(pa), Some(pb)) => assert_eq!(
                pa.as_slice(),
                pb.as_slice(),
                "{b_name}: replay moved request {i} (replayability)"
            ),
            _ => panic!("{b_name}: replay changed request {i}'s fault outcome (replayability)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FloatBackend, FusedBackend};
    use bnn_nn::models;
    use bnn_tensor::Shape4;

    #[test]
    fn float_agrees_with_itself() {
        let net = models::lenet5(10, 1, 16, 6);
        let x = Tensor::full(Shape4::new(2, 1, 16, 16), 0.15);
        assert_backend_agrees(
            &mut FloatBackend::new(&net),
            &mut FloatBackend::new(&net),
            &x,
            BayesConfig::new(2, 5),
            3,
            Tolerance::BitExact,
        );
    }

    #[test]
    fn fused_passes_conformance_against_float() {
        let net = models::lenet5(10, 1, 16, 6);
        let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.15);
        assert_backend_agrees(
            &mut FloatBackend::new(&net),
            &mut FusedBackend::new(&net),
            &x,
            BayesConfig::new(3, 9),
            11,
            Tolerance::BitExact,
        );
    }

    #[test]
    #[should_panic(expected = "probabilities moved")]
    fn bit_exact_tolerance_rejects_different_seeds_worth_of_drift() {
        // A backend serving a *different* network must be caught.
        let net = models::lenet5(10, 1, 16, 6);
        let other = models::lenet5(10, 1, 16, 7);
        let x = Tensor::full(Shape4::new(1, 1, 16, 16), 0.15);
        assert_backend_agrees(
            &mut FloatBackend::new(&net),
            &mut FloatBackend::new(&other),
            &x,
            BayesConfig::new(2, 4),
            5,
            Tolerance::BitExact,
        );
    }
}
