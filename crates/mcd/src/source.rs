//! Sources of MCD dropout masks.

use bnn_nn::MaskSet;
use bnn_rng::{BernoulliSampler, DropProbability, SoftRng};

/// A source of per-pass dropout masks for the active sites.
pub trait MaskSource {
    /// Produce one [`MaskSet`] covering `active.len()` sites;
    /// `channels[i]` is the mask length for site `i` and `p` the drop
    /// probability.
    fn next_masks(&mut self, active: &[bool], channels: &[usize], p: f32) -> MaskSet;
}

/// Build a [`MaskSet`] for the active sites, pulling each active
/// site's keep bits from `keep_bits`.
///
/// Every mask producer — [`SoftwareMaskSource`], [`HardwareMaskSource`]
/// and the accelerator simulator's on-chip sampler — draws through
/// this one helper (which delegates to [`MaskSet::draw`]), so backends
/// cannot disagree on which sites are Bayesian: `keep_bits` is invoked
/// once per *active* site, in site order, and inactive sites consume
/// nothing from the underlying bit stream.
pub fn draw_site_masks(
    active: &[bool],
    channels: &[usize],
    p: f32,
    keep_bits: impl FnMut(usize) -> Vec<bool>,
) -> MaskSet {
    MaskSet::draw(active, channels, p, keep_bits)
}

/// Software mask source: SplitMix64-driven Bernoulli draws.
#[derive(Debug)]
pub struct SoftwareMaskSource {
    rng: SoftRng,
}

impl SoftwareMaskSource {
    /// Create from a seed.
    pub fn new(seed: u64) -> SoftwareMaskSource {
        SoftwareMaskSource {
            rng: SoftRng::new(seed),
        }
    }
}

impl MaskSource for SoftwareMaskSource {
    fn next_masks(&mut self, active: &[bool], channels: &[usize], p: f32) -> MaskSet {
        // `sample_software` itself routes through `MaskSet::draw`, the
        // same helper `draw_site_masks` wraps for the hardware paths.
        MaskSet::sample_software(active, channels, p, &mut self.rng)
    }
}

/// Hardware mask source: masks drawn from the bit-exact LFSR Bernoulli
/// sampler pipeline (paper Figure 3).
///
/// The drop probability must be representable as `k/2^m`
/// ([`DropProbability`]); the paper uses `p = 0.25`.
#[derive(Debug)]
pub struct HardwareMaskSource {
    sampler: BernoulliSampler,
    p: DropProbability,
}

impl HardwareMaskSource {
    /// Create with the paper's defaults: `P_F`-bit words and a FIFO of
    /// `fifo_depth` words.
    ///
    /// Returns `None` if `p_num/2^p_log2den` is not a valid probability.
    pub fn new(
        p_num: u32,
        p_log2den: u32,
        pf: usize,
        fifo_depth: usize,
        seed: u64,
    ) -> Option<HardwareMaskSource> {
        let p = DropProbability::new(p_num, p_log2den)?;
        Some(HardwareMaskSource {
            sampler: BernoulliSampler::new(p, pf, fifo_depth, seed),
            p,
        })
    }

    /// The paper's configuration: `p = 0.25`, `P_F = 64`, FIFO depth 64.
    pub fn paper_default(seed: u64) -> HardwareMaskSource {
        HardwareMaskSource {
            sampler: BernoulliSampler::new(DropProbability::quarter(), 64, 64, seed),
            p: DropProbability::quarter(),
        }
    }

    /// The sampler's exact drop probability.
    pub fn probability(&self) -> f64 {
        self.p.value()
    }
}

impl MaskSource for HardwareMaskSource {
    fn next_masks(&mut self, active: &[bool], channels: &[usize], p: f32) -> MaskSet {
        assert!(
            (f64::from(p) - self.p.value()).abs() < 1e-9,
            "hardware sampler built for p = {}, asked for {p}",
            self.p.value()
        );
        let sampler = &mut self.sampler;
        draw_site_masks(active, channels, p, |c| sampler.generate_mask(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_source_is_reproducible() {
        let mut a = SoftwareMaskSource::new(5);
        let mut b = SoftwareMaskSource::new(5);
        let (act, ch) = (vec![true, false], vec![8usize, 4]);
        let ma = a.next_masks(&act, &ch, 0.25);
        let mb = b.next_masks(&act, &ch, 0.25);
        assert_eq!(
            ma.get(0).map(|m| m.keep.clone()),
            mb.get(0).map(|m| m.keep.clone())
        );
        assert!(ma.get(1).is_none());
    }

    #[test]
    fn hardware_source_produces_expected_rate() {
        let mut src = HardwareMaskSource::paper_default(3);
        let act = vec![true];
        let ch = vec![64usize];
        let mut dropped = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            let ms = src.next_masks(&act, &ch, 0.25);
            let m = ms.get(0).expect("site active");
            dropped += m.keep.iter().filter(|&&k| !k).count();
            total += m.keep.len();
        }
        let rate = dropped as f64 / total as f64;
        assert!((rate - 0.25).abs() < 0.02, "hardware drop rate {rate}");
    }

    #[test]
    #[should_panic(expected = "hardware sampler built for p")]
    fn hardware_source_rejects_mismatched_p() {
        let mut src = HardwareMaskSource::paper_default(3);
        let _ = src.next_masks(&[true], &[4], 0.5);
    }

    #[test]
    fn hardware_source_invalid_probability_is_none() {
        assert!(HardwareMaskSource::new(0, 2, 64, 64, 1).is_none());
        assert!(HardwareMaskSource::new(4, 2, 64, 64, 1).is_none());
    }

    #[test]
    fn mask_scale_is_inverse_keep_probability() {
        let mut src = HardwareMaskSource::paper_default(9);
        let ms = src.next_masks(&[true], &[16], 0.25);
        let m = ms.get(0).expect("active");
        assert!((m.scale - 4.0 / 3.0).abs() < 1e-6);
    }
}
