//! Hardware-style Gaussian samplers.
//!
//! Weight-sampling BNN accelerators (VIBNN [8] in the paper's related
//! work) need Gaussian random numbers on chip. Two classic FPGA
//! constructions are modelled here and used by the `bnn-platforms`
//! VIBNN baseline:
//!
//! * [`CltGaussianSampler`] — central-limit-theorem sampler: the sum of
//!   `K` uniform words from an LFSR bank, normalised to zero mean and
//!   unit variance. Cheap (adders only), mildly platykurtic tails.
//! * [`BoxMullerFixedSampler`] — fixed-point Box–Muller with Q16.16
//!   lookup tables for `sqrt(-2 ln u)` and `cos/sin(2πu)`, the
//!   DSP-based alternative with accurate tails.

use crate::lfsr::LfsrBank;

/// Common interface of the hardware Gaussian samplers.
pub trait GaussianSampler {
    /// Draw one standard-normal sample.
    fn sample(&mut self) -> f32;

    /// Draw `n` samples into a vector.
    fn sample_n(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.sample()).collect()
    }
}

/// Central-limit-theorem Gaussian sampler.
///
/// Each cycle, `k` LFSRs each contribute a `bits`-wide uniform word;
/// the words are summed and affinely mapped to zero mean, unit
/// variance. With `k = 12, bits = 16` the output matches a standard
/// normal to ~3 decimal places in the bulk; tails are truncated at
/// `±k/2 · sqrt(12/k)` (≈ ±6σ for k = 12), which is the same
/// truncation real CLT hardware exhibits.
///
/// # Example
///
/// ```
/// use bnn_rng::{CltGaussianSampler, GaussianSampler};
///
/// let mut g = CltGaussianSampler::new(12, 16, 42);
/// let xs = g.sample_n(1000);
/// let mean = xs.iter().sum::<f32>() / 1000.0;
/// assert!(mean.abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct CltGaussianSampler {
    bank: LfsrBank,
    k: u32,
    bits: u32,
    scale: f64,
    offset: f64,
}

impl CltGaussianSampler {
    /// Create a CLT sampler summing `k` uniforms of `bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `bits == 0` or `bits > 32`.
    pub fn new(k: u32, bits: u32, seed: u64) -> CltGaussianSampler {
        assert!(k > 0, "k must be positive");
        assert!(bits > 0 && bits <= 32, "bits must be in 1..=32");
        // Each uniform word u in [0, 2^bits - 1]:
        //   mean = (2^bits - 1)/2, var = (2^(2 bits) - 1)/12.
        let m = f64::from(k) * (2f64.powi(bits as i32) - 1.0) / 2.0;
        let var1 = ((2f64.powi(2 * bits as i32)) - 1.0) / 12.0;
        let std = (f64::from(k) * var1).sqrt();
        CltGaussianSampler {
            bank: LfsrBank::new(k as usize, 128, seed),
            k,
            bits,
            scale: 1.0 / std,
            offset: m,
        }
    }

    /// Number of uniform terms summed per sample.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Raw integer sum for one sample (exposed for bit-level tests).
    pub fn raw_sum(&mut self) -> u64 {
        let mut sum = 0u64;
        for i in 0..self.k as usize {
            let mut w = 0u64;
            for _ in 0..self.bits {
                w = (w << 1) | u64::from(self.bank.reg_mut(i).step());
            }
            sum += w;
        }
        sum
    }
}

impl GaussianSampler for CltGaussianSampler {
    fn sample(&mut self) -> f32 {
        let s = self.raw_sum() as f64;
        ((s - self.offset) * self.scale) as f32
    }
}

const Q: i64 = 1 << 16; // Q16.16 fixed point

/// Fixed-point Box–Muller Gaussian sampler with Q16.16 LUTs.
///
/// Models an FPGA implementation: two uniform words drive a
/// `sqrt(-2 ln u1)` lookup (256 entries, linear interpolation, with an
/// exact-exponent prescaling so small `u1` keeps precision) and a
/// quarter-wave `cos` lookup. Both outputs of the transform are used
/// (cos and sin phases) as real hardware does.
#[derive(Debug, Clone)]
pub struct BoxMullerFixedSampler {
    bank: LfsrBank,
    cos_lut: Vec<i64>, // cos over [0, 2pi), Q16.16
    cached: Option<f32>,
}

impl BoxMullerFixedSampler {
    /// Create a sampler with LFSRs seeded from `seed`.
    pub fn new(seed: u64) -> BoxMullerFixedSampler {
        let cos_lut = (0..1024)
            .map(|i| {
                let th = 2.0 * std::f64::consts::PI * (i as f64 + 0.5) / 1024.0;
                (th.cos() * Q as f64).round() as i64
            })
            .collect();
        BoxMullerFixedSampler {
            bank: LfsrBank::new(2, 128, seed),
            cos_lut,
            cached: None,
        }
    }

    fn uniform_q32(&mut self, reg: usize) -> u64 {
        let mut w = 0u64;
        for _ in 0..32 {
            w = (w << 1) | u64::from(self.bank.reg_mut(reg).step());
        }
        w
    }

    /// Fixed-point `sqrt(-2 ln(u))` for `u` given as a 32-bit uniform
    /// (interpreted as u/2^32 in (0,1]). Returns Q16.16.
    ///
    /// Uses the hardware trick of splitting `u = m * 2^-e` with
    /// `m in [0.5, 1)`: `-ln u = -ln m + e ln 2`, so only `ln m` needs a
    /// LUT while the exponent contribution is exact.
    fn radius_q16(&mut self, u32bits: u64) -> i64 {
        let u = u32bits | 1; // avoid u = 0
        let lz = (u as u32).leading_zeros(); // u/2^32 = (norm/2^32) * 2^-lz, norm in [0.5,1)*2^32
        let e = i64::from(lz);
        // mantissa m in [0.5, 1): take top bits after normalisation.
        let norm = (u as u32) << lz; // MSB set
        let m = f64::from(norm) / ((u32::MAX as f64) + 1.0);
        // 64-entry LUT over m in [0.5, 1) for -ln m, Q16.16, linear interp.
        let idx_f = (m - 0.5) * 128.0; // [0, 64)
        let idx = (idx_f as usize).min(63);
        let frac = idx_f - idx as f64;
        let lut = |i: usize| -> f64 {
            let mm = 0.5 + (i as f64 + 0.5) / 128.0;
            -mm.ln()
        };
        let neg_ln_m = lut(idx) * (1.0 - frac) + lut((idx + 1).min(63)) * frac;
        let neg_ln_u = neg_ln_m + e as f64 * std::f64::consts::LN_2;
        let r = (2.0 * neg_ln_u).sqrt();
        (r * Q as f64).round() as i64
    }
}

impl GaussianSampler for BoxMullerFixedSampler {
    fn sample(&mut self) -> f32 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        let u1 = self.uniform_q32(0);
        let u2 = self.uniform_q32(1);
        let r_q = self.radius_q16(u1);
        let phase = (u2 >> (32 - 10)) as usize; // top 10 bits index the LUT
        let cos_q = self.cos_lut[phase & 1023];
        let sin_q = self.cos_lut[(phase.wrapping_add(768)) & 1023]; // sin = cos shifted
        let z0 = ((r_q * cos_q) >> 16) as f64 / Q as f64;
        let z1 = ((r_q * sin_q) >> 16) as f64 / Q as f64;
        self.cached = Some(z1 as f32);
        z0 as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(xs: &[f32]) -> (f64, f64, f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().map(|&x| f64::from(x)).sum::<f64>() / n;
        let var = xs
            .iter()
            .map(|&x| (f64::from(x) - mean).powi(2))
            .sum::<f64>()
            / n;
        let skew = xs
            .iter()
            .map(|&x| (f64::from(x) - mean).powi(3))
            .sum::<f64>()
            / n
            / var.powf(1.5);
        let kurt = xs
            .iter()
            .map(|&x| (f64::from(x) - mean).powi(4))
            .sum::<f64>()
            / n
            / var
            / var;
        (mean, var, skew, kurt)
    }

    #[test]
    fn clt_moments_match_standard_normal() {
        let mut g = CltGaussianSampler::new(12, 16, 101);
        let xs = g.sample_n(50_000);
        let (mean, var, skew, kurt) = moments(&xs);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        assert!(skew.abs() < 0.05, "skew {skew}");
        // CLT with k=12 is slightly platykurtic: kurtosis ~ 3 - 1.2/12 = 2.9.
        assert!((kurt - 2.9).abs() < 0.15, "kurtosis {kurt}");
    }

    #[test]
    fn clt_raw_sum_range() {
        let mut g = CltGaussianSampler::new(4, 8, 7);
        for _ in 0..1000 {
            let s = g.raw_sum();
            assert!(s <= 4 * 255, "sum of four u8 words bounded");
        }
    }

    #[test]
    fn box_muller_moments() {
        let mut g = BoxMullerFixedSampler::new(303);
        let xs = g.sample_n(50_000);
        let (mean, var, skew, kurt) = moments(&xs);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        assert!(skew.abs() < 0.06, "skew {skew}");
        assert!((kurt - 3.0).abs() < 0.25, "kurtosis {kurt}");
    }

    #[test]
    fn box_muller_tail_mass() {
        // P(|Z| > 2) ~ 0.0455 for a true normal; the LUT version should
        // be within a percent absolute.
        let mut g = BoxMullerFixedSampler::new(99);
        let xs = g.sample_n(100_000);
        let tail = xs.iter().filter(|x| x.abs() > 2.0).count() as f64 / xs.len() as f64;
        assert!((tail - 0.0455).abs() < 0.01, "two-sigma tail mass {tail}");
    }

    #[test]
    fn clt_tails_truncated_as_documented() {
        // k = 12, 16-bit words: |z| can never exceed 6 sigma.
        let mut g = CltGaussianSampler::new(12, 16, 5);
        let xs = g.sample_n(20_000);
        assert!(xs.iter().all(|x| x.abs() <= 6.01));
    }

    #[test]
    fn samplers_reproducible() {
        let mut a = BoxMullerFixedSampler::new(4);
        let mut b = BoxMullerFixedSampler::new(4);
        assert_eq!(a.sample_n(32), b.sample_n(32));
        let mut c = CltGaussianSampler::new(8, 16, 4);
        let mut d = CltGaussianSampler::new(8, 16, 4);
        assert_eq!(c.sample_n(32), d.sample_n(32));
    }
}
