//! The paper's Bernoulli sampler (Figure 3): LFSR bank + gate network
//! + serial-in-parallel-out register + FIFO.
//!
//! MCD is applied filter-wise, so each layer needs one Bernoulli
//! random variable per output filter. A single LFSR emits bits with
//! `P(1) = 0.5`; dropout probabilities `p = k / 2^m` are synthesised by
//! combining `m` independent LFSR bits through a comparator (the paper
//! describes the special case `p = 0.25` as "two LFSRs with an extra
//! AND gate", which is the comparator with `k = 1, m = 2`).

use crate::fifo::Fifo;
use crate::lfsr::LfsrBank;

/// A dropout probability representable in hardware as `k / 2^m`.
///
/// `m` LFSR bits form an `m`-bit uniform word `u`; the mask bit *drops*
/// the filter when `u < k`. With `k = 1, m = 2` this degenerates to the
/// paper's two-LFSR AND gate (`u = 0b00` ⇔ AND of the inverted bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DropProbability {
    numerator: u32,
    log2_denominator: u32,
}

impl DropProbability {
    /// Create `p_drop = numerator / 2^log2_denominator`.
    ///
    /// Returns `None` unless `0 < numerator < 2^log2_denominator` and
    /// `log2_denominator <= 16` (the widest gate network the model
    /// supports; hardware rarely exceeds 4).
    pub fn new(numerator: u32, log2_denominator: u32) -> Option<DropProbability> {
        if log2_denominator == 0 || log2_denominator > 16 {
            return None;
        }
        if numerator == 0 || numerator >= (1 << log2_denominator) {
            return None;
        }
        Some(DropProbability {
            numerator,
            log2_denominator,
        })
    }

    /// The paper's default `p = 0.25` (two LFSRs + AND gate).
    pub fn quarter() -> DropProbability {
        DropProbability {
            numerator: 1,
            log2_denominator: 2,
        }
    }

    /// `p = 0.5` (single LFSR).
    pub fn half() -> DropProbability {
        DropProbability {
            numerator: 1,
            log2_denominator: 1,
        }
    }

    /// The probability as a float.
    pub fn value(&self) -> f64 {
        f64::from(self.numerator) / f64::from(1u32 << self.log2_denominator)
    }

    /// Number of LFSRs (= gate-network inputs) required.
    pub fn lfsr_count(&self) -> usize {
        self.log2_denominator as usize
    }

    /// Numerator `k` of `k / 2^m`.
    pub fn numerator(&self) -> u32 {
        self.numerator
    }

    /// `m` of `k / 2^m`.
    pub fn log2_denominator(&self) -> u32 {
        self.log2_denominator
    }
}

/// The gate network combining `m` LFSR bit-streams into a keep/drop
/// decision with `P(drop) = k / 2^m`.
#[derive(Debug, Clone)]
pub struct GateNetwork {
    bank: LfsrBank,
    p: DropProbability,
    produced: u64,
    dropped: u64,
}

impl GateNetwork {
    /// Build a gate network for probability `p`, seeding the LFSR bank
    /// from `seed`.
    pub fn new(p: DropProbability, seed: u64) -> GateNetwork {
        GateNetwork {
            bank: LfsrBank::new(p.lfsr_count(), 128, seed),
            p,
            produced: 0,
            dropped: 0,
        }
    }

    /// Advance one cycle: returns the mask bit (`true` = keep filter,
    /// `false` = drop filter).
    pub fn next_keep_bit(&mut self) -> bool {
        let word = self.bank.step_all() as u32 & ((1u32 << self.p.log2_denominator()) - 1);
        let drop = word < self.p.numerator();
        self.produced += 1;
        if drop {
            self.dropped += 1;
        }
        !drop
    }

    /// Configured drop probability.
    pub fn probability(&self) -> DropProbability {
        self.p
    }

    /// Total bits produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Total drop decisions so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Serial-in-parallel-out register assembling single mask bits into
/// `P_F`-bit words (one bit per processed filter lane).
#[derive(Debug, Clone)]
pub struct Sipo {
    bits: Vec<bool>,
    width: usize,
}

impl Sipo {
    /// Create a SIPO of `width` bits (`P_F` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Sipo {
        assert!(width > 0, "SIPO width must be non-zero");
        Sipo {
            bits: Vec::with_capacity(width),
            width,
        }
    }

    /// Shift one bit in; returns the completed word when the register
    /// fills (and resets it).
    pub fn shift_in(&mut self, bit: bool) -> Option<Vec<bool>> {
        self.bits.push(bit);
        if self.bits.len() == self.width {
            let word = std::mem::replace(&mut self.bits, Vec::with_capacity(self.width));
            Some(word)
        } else {
            None
        }
    }

    /// Configured width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Bits currently latched (for inspection in tests).
    pub fn pending(&self) -> usize {
        self.bits.len()
    }
}

/// Occupancy and throughput statistics of a [`BernoulliSampler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerStats {
    /// Cycles the sampler has been ticked.
    pub cycles: u64,
    /// Mask bits produced by the gate network.
    pub bits_produced: u64,
    /// Mask bits that were drop decisions.
    pub bits_dropped: u64,
    /// Words currently waiting in the FIFO.
    pub fifo_occupancy: usize,
    /// Maximum FIFO occupancy observed.
    pub fifo_high_water: usize,
    /// Cycles in which the sampler stalled on a full FIFO.
    pub stall_cycles: u64,
}

/// The complete Bernoulli sampler pipeline of paper Figure 3.
///
/// One gate-network bit is produced per cycle, assembled into
/// `P_F`-bit words by the SIPO and buffered in the FIFO until the
/// dropout unit pops them. When the FIFO is full the sampler stalls
/// (hardware back-pressure), which the stats expose so FIFO depth can
/// be sized.
///
/// # Example
///
/// ```
/// use bnn_rng::{BernoulliSampler, DropProbability};
///
/// let mut s = BernoulliSampler::new(DropProbability::quarter(), 8, 16, 42);
/// let mask = s.generate_mask(20); // 20 filters => 3 FIFO words popped
/// assert_eq!(mask.len(), 20);
/// let kept = mask.iter().filter(|&&b| b).count();
/// assert!(kept >= 10, "with p=0.25 most filters are kept");
/// ```
#[derive(Debug, Clone)]
pub struct BernoulliSampler {
    gate: GateNetwork,
    sipo: Sipo,
    fifo: Fifo<Vec<bool>>,
    cycles: u64,
    stalls: u64,
}

impl BernoulliSampler {
    /// Create a sampler producing `pf`-bit mask words with drop
    /// probability `p`, buffered in a FIFO of `fifo_depth` words.
    pub fn new(p: DropProbability, pf: usize, fifo_depth: usize, seed: u64) -> BernoulliSampler {
        BernoulliSampler {
            gate: GateNetwork::new(p, seed),
            sipo: Sipo::new(pf),
            fifo: Fifo::new(fifo_depth),
            cycles: 0,
            stalls: 0,
        }
    }

    /// Advance one hardware cycle.
    ///
    /// If the FIFO has room, a new bit is generated and shifted into
    /// the SIPO; a completed word is pushed to the FIFO. If the FIFO is
    /// full and the SIPO has a completed word pending, the sampler
    /// stalls for the cycle.
    pub fn tick(&mut self) {
        self.cycles += 1;
        if self.fifo.is_full() && self.sipo.pending() + 1 == self.sipo.width() {
            // Completing the word this cycle would have nowhere to go.
            self.stalls += 1;
            return;
        }
        let bit = self.gate.next_keep_bit();
        if let Some(word) = self.sipo.shift_in(bit) {
            // Capacity was checked above; a push failure would be a bug.
            self.fifo
                .push(word)
                .expect("fifo capacity checked before shift");
        }
    }

    /// Pop one `P_F`-bit mask word, ticking the sampler until a word is
    /// available.
    pub fn pop_word(&mut self) -> Vec<bool> {
        loop {
            if let Some(w) = self.fifo.pop() {
                return w;
            }
            self.tick();
        }
    }

    /// Generate a filter-wise mask for a layer with `filters` output
    /// filters: `true` = keep (scale by `1/(1-p)` downstream),
    /// `false` = drop.
    pub fn generate_mask(&mut self, filters: usize) -> Vec<bool> {
        let mut mask = Vec::with_capacity(filters);
        while mask.len() < filters {
            let w = self.pop_word();
            let take = (filters - mask.len()).min(w.len());
            mask.extend_from_slice(&w[..take]);
            // Remaining bits of a partially-consumed word correspond to
            // hardware lanes beyond the layer's filter count; they are
            // discarded exactly as the RTL ignores unused lanes.
        }
        mask
    }

    /// Run the sampler for `n` idle cycles (models the engine busy
    /// elsewhere while the sampler fills its FIFO ahead of time).
    pub fn run_ahead(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> SamplerStats {
        SamplerStats {
            cycles: self.cycles,
            bits_produced: self.gate.produced(),
            bits_dropped: self.gate.dropped(),
            fifo_occupancy: self.fifo.len(),
            fifo_high_water: self.fifo.high_water(),
            stall_cycles: self.stalls,
        }
    }

    /// Configured drop probability.
    pub fn probability(&self) -> DropProbability {
        self.gate.probability()
    }

    /// Mask word width (`P_F`).
    pub fn pf(&self) -> usize {
        self.sipo.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_probability_validation() {
        assert!(
            DropProbability::new(0, 2).is_none(),
            "p=0 not representable"
        );
        assert!(
            DropProbability::new(4, 2).is_none(),
            "p=1 not representable"
        );
        assert!(DropProbability::new(1, 0).is_none());
        assert!(DropProbability::new(1, 17).is_none());
        let p = DropProbability::new(3, 3).expect("3/8 valid");
        assert!((p.value() - 0.375).abs() < 1e-12);
        assert_eq!(p.lfsr_count(), 3);
    }

    #[test]
    fn quarter_uses_two_lfsrs() {
        let p = DropProbability::quarter();
        assert_eq!(p.lfsr_count(), 2, "paper: two LFSRs + AND gate for p=0.25");
        assert!((p.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gate_network_empirical_rate_quarter() {
        let mut g = GateNetwork::new(DropProbability::quarter(), 7);
        let n = 200_000u64;
        let mut drops = 0u64;
        for _ in 0..n {
            if !g.next_keep_bit() {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!(
            (rate - 0.25).abs() < 0.005,
            "empirical drop rate {rate} != 0.25"
        );
    }

    #[test]
    fn gate_network_empirical_rate_three_eighths() {
        let p = DropProbability::new(3, 3).expect("valid");
        let mut g = GateNetwork::new(p, 11);
        let n = 200_000u64;
        let mut drops = 0u64;
        for _ in 0..n {
            if !g.next_keep_bit() {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!(
            (rate - 0.375).abs() < 0.005,
            "empirical drop rate {rate} != 0.375"
        );
    }

    #[test]
    fn sipo_assembles_words() {
        let mut s = Sipo::new(3);
        assert_eq!(s.shift_in(true), None);
        assert_eq!(s.shift_in(false), None);
        let w = s.shift_in(true).expect("word complete");
        assert_eq!(w, vec![true, false, true]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn sampler_mask_lengths() {
        let mut s = BernoulliSampler::new(DropProbability::quarter(), 8, 4, 3);
        for filters in [1usize, 7, 8, 9, 64, 100] {
            let m = s.generate_mask(filters);
            assert_eq!(m.len(), filters);
        }
    }

    #[test]
    fn sampler_empirical_drop_rate() {
        let mut s = BernoulliSampler::new(DropProbability::quarter(), 64, 8, 17);
        let mut total = 0u64;
        let mut dropped = 0u64;
        for _ in 0..400 {
            let m = s.generate_mask(64);
            total += m.len() as u64;
            dropped += m.iter().filter(|&&b| !b).count() as u64;
        }
        let rate = dropped as f64 / total as f64;
        assert!((rate - 0.25).abs() < 0.02, "mask drop rate {rate} != 0.25");
    }

    #[test]
    fn sampler_stalls_when_fifo_full() {
        let mut s = BernoulliSampler::new(DropProbability::half(), 2, 1, 5);
        // 1-word FIFO, 2-bit words: after 2 ticks the FIFO is full;
        // further ticks must eventually stall rather than drop words.
        s.run_ahead(32);
        let st = s.stats();
        assert!(st.stall_cycles > 0, "expected stalls with tiny FIFO");
        assert_eq!(st.fifo_high_water, 1);
    }

    #[test]
    fn run_ahead_fills_fifo() {
        let mut s = BernoulliSampler::new(DropProbability::quarter(), 4, 16, 5);
        s.run_ahead(64);
        assert_eq!(
            s.stats().fifo_occupancy,
            16,
            "64 cycles / 4-bit words = 16 words"
        );
    }

    #[test]
    fn distinct_seeds_distinct_masks() {
        let mut a = BernoulliSampler::new(DropProbability::quarter(), 64, 8, 1);
        let mut b = BernoulliSampler::new(DropProbability::quarter(), 64, 8, 2);
        assert_ne!(a.generate_mask(64), b.generate_mask(64));
    }

    #[test]
    fn same_seed_reproducible() {
        let mut a = BernoulliSampler::new(DropProbability::quarter(), 64, 8, 9);
        let mut b = BernoulliSampler::new(DropProbability::quarter(), 64, 8, 9);
        for _ in 0..10 {
            assert_eq!(a.generate_mask(33), b.generate_mask(33));
        }
    }
}
