//! A bounded FIFO modelling the hardware buffer at the end of the
//! Bernoulli sampler (paper Figure 3).
//!
//! The hardware FIFO decouples mask generation from mask consumption:
//! the sampler pushes one `P_F`-bit word per `P_F` cycles while the
//! neural network engine pops words at layer-dependent rates. The model
//! tracks occupancy statistics so the accelerator simulator can size
//! the FIFO depth `D` used by the resource model
//! (`MEM_FIFO = D * P_F * DW`).

use std::fmt;

/// Error returned when pushing into a full [`Fifo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFullError {
    capacity: usize,
}

impl FifoFullError {
    /// Capacity of the FIFO that rejected the push.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl fmt::Display for FifoFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fifo full (capacity {})", self.capacity)
    }
}

impl std::error::Error for FifoFullError {}

/// A bounded ring-buffer FIFO with occupancy statistics.
///
/// # Example
///
/// ```
/// use bnn_rng::Fifo;
///
/// let mut f: Fifo<u64> = Fifo::new(4);
/// f.push(7)?;
/// assert_eq!(f.pop(), Some(7));
/// assert_eq!(f.pop(), None);
/// # Ok::<(), bnn_rng::FifoFullError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    buf: Vec<Option<T>>,
    head: usize,
    len: usize,
    high_water: usize,
    pushes: u64,
    pops: u64,
}

impl<T> Fifo<T> {
    /// Create a FIFO with the given capacity (depth `D` in the paper's
    /// resource model).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Fifo<T> {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        let mut buf = Vec::with_capacity(capacity);
        buf.resize_with(capacity, || None);
        Fifo {
            buf,
            head: 0,
            len: 0,
            high_water: 0,
            pushes: 0,
            pops: 0,
        }
    }

    /// Push a value.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] when the FIFO is at capacity, which in
    /// hardware corresponds to back-pressure stalling the sampler.
    pub fn push(&mut self, value: T) -> Result<(), FifoFullError> {
        if self.len == self.buf.len() {
            return Err(FifoFullError {
                capacity: self.buf.len(),
            });
        }
        let tail = (self.head + self.len) % self.buf.len();
        self.buf[tail] = Some(value);
        self.len += 1;
        self.pushes += 1;
        self.high_water = self.high_water.max(self.len);
        Ok(())
    }

    /// Pop the oldest value, or `None` when empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let v = self.buf[self.head].take();
        self.head = (self.head + 1) % self.buf.len();
        self.len -= 1;
        self.pops += 1;
        v
    }

    /// Current number of buffered elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the FIFO holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// Capacity the FIFO was created with.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Maximum occupancy ever observed (for FIFO depth sizing).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total successful pushes.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total successful pops.
    pub fn pops(&self) -> u64 {
        self.pops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_preserves_order() {
        let mut f = Fifo::new(3);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn push_full_errors() {
        let mut f = Fifo::new(2);
        f.push(1).unwrap();
        f.push(2).unwrap();
        let err = f.push(3).expect_err("fifo should be full");
        assert_eq!(err.capacity(), 2);
        assert!(err.to_string().contains("capacity 2"));
    }

    #[test]
    fn wraparound_works() {
        let mut f = Fifo::new(2);
        for i in 0..10 {
            f.push(i).unwrap();
            assert_eq!(f.pop(), Some(i));
        }
        assert!(f.is_empty());
        assert_eq!(f.pushes(), 10);
        assert_eq!(f.pops(), 10);
    }

    #[test]
    fn high_water_tracks_max_occupancy() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        f.pop();
        f.pop();
        f.push(4).unwrap();
        assert_eq!(f.high_water(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = Fifo::<u8>::new(0);
    }
}
