//! Fibonacci linear feedback shift registers.
//!
//! The accelerator's Bernoulli sampler (paper Figure 3) is built from
//! 128-bit 4-tap LFSRs. This module implements the general Fibonacci
//! form for widths up to 128 bits, with the tap tables used by the
//! paper (Xilinx XAPP052 maximal-length polynomials).

use crate::BitStream;

/// Tap positions of a maximal-length LFSR polynomial.
///
/// Positions are 1-indexed from the register input, matching the usual
/// application-note convention: tap `i` refers to state bit `i - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TapSpec {
    /// Register width in bits (1..=128).
    pub width: u32,
    /// Tap positions (1-indexed, each `<= width`). Unused entries are 0.
    pub taps: [u32; 4],
}

impl TapSpec {
    /// Known maximal-length tap configuration for a register width.
    ///
    /// Returns `None` for widths without an entry in the built-in table.
    /// Widths with 2-tap maximal polynomials use two taps; the rest use
    /// four, like the paper's 128-bit register.
    pub fn maximal(width: u32) -> Option<TapSpec> {
        let taps: [u32; 4] = match width {
            3 => [3, 2, 0, 0],
            4 => [4, 3, 0, 0],
            5 => [5, 3, 0, 0],
            6 => [6, 5, 0, 0],
            7 => [7, 6, 0, 0],
            8 => [8, 6, 5, 4],
            9 => [9, 5, 0, 0],
            10 => [10, 7, 0, 0],
            11 => [11, 9, 0, 0],
            12 => [12, 6, 4, 1],
            15 => [15, 14, 0, 0],
            16 => [16, 15, 13, 4],
            17 => [17, 14, 0, 0],
            20 => [20, 17, 0, 0],
            24 => [24, 23, 22, 17],
            31 => [31, 28, 0, 0],
            32 => [32, 22, 2, 1],
            64 => [64, 63, 61, 60],
            128 => [128, 126, 101, 99],
            _ => return None,
        };
        Some(TapSpec { width, taps })
    }

    /// Number of active taps.
    pub fn tap_count(&self) -> usize {
        self.taps.iter().filter(|&&t| t != 0).count()
    }
}

/// A Fibonacci LFSR of up to 128 bits.
///
/// The register shifts left one position per cycle; the feedback bit is
/// the XOR of the tapped bits and becomes the new least-significant
/// bit. The produced output bit is the bit shifted out of the
/// most-significant position. A non-zero seed is enforced (the all-zero
/// state is the XOR-form lock-up state).
///
/// # Example
///
/// ```
/// use bnn_rng::{Lfsr, BitStream};
///
/// let mut lfsr = Lfsr::paper_128(1);
/// let first: Vec<bool> = (0..8).map(|_| lfsr.next_bit()).collect();
/// assert_eq!(first.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    state: u128,
    spec: TapSpec,
    mask: u128,
    cycles: u64,
}

impl Lfsr {
    /// Create an LFSR with the given tap specification and seed.
    ///
    /// The seed is masked to the register width; if the masked seed is
    /// zero, the state is set to 1 so the register never locks up.
    ///
    /// # Panics
    ///
    /// Panics if `spec.width` is 0 or greater than 128, or if a tap
    /// exceeds the width — these are programming errors in the tap
    /// table, not runtime conditions.
    pub fn new(spec: TapSpec, seed: u128) -> Lfsr {
        assert!(
            spec.width >= 1 && spec.width <= 128,
            "LFSR width out of range"
        );
        for &t in &spec.taps {
            assert!(t <= spec.width, "tap position exceeds register width");
        }
        let mask = if spec.width == 128 {
            u128::MAX
        } else {
            (1u128 << spec.width) - 1
        };
        let mut state = seed & mask;
        if state == 0 {
            state = 1;
        }
        Lfsr {
            state,
            spec,
            mask,
            cycles: 0,
        }
    }

    /// The paper's 128-bit 4-tap LFSR (taps 128, 126, 101, 99).
    ///
    /// The paper notes such a register clocked at 160 MHz would take
    /// centuries to exhaust its sequence; we rely on the same property
    /// for independence of the per-filter mask bits.
    pub fn paper_128(seed: u128) -> Lfsr {
        let spec = TapSpec::maximal(128).expect("128-bit entry exists");
        Lfsr::new(spec, seed)
    }

    /// Maximal-length LFSR of the given width seeded from a 64-bit seed.
    ///
    /// Returns `None` when no maximal tap entry is known for `width`.
    pub fn maximal(width: u32, seed: u64) -> Option<Lfsr> {
        TapSpec::maximal(width).map(|s| Lfsr::new(s, seed as u128))
    }

    /// Current register state (masked to the register width).
    pub fn state(&self) -> u128 {
        self.state
    }

    /// Tap specification in use.
    pub fn spec(&self) -> TapSpec {
        self.spec
    }

    /// Number of cycles the register has been stepped.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Step one cycle, returning the bit shifted out of the MSB.
    pub fn step(&mut self) -> bool {
        let mut fb = false;
        for &t in &self.spec.taps {
            if t != 0 {
                fb ^= (self.state >> (t - 1)) & 1 == 1;
            }
        }
        let out = (self.state >> (self.spec.width - 1)) & 1 == 1;
        self.state = ((self.state << 1) | u128::from(fb)) & self.mask;
        self.cycles += 1;
        out
    }

    /// Step `n` cycles, collecting the output bits into a `u64`
    /// (first bit produced becomes the most significant of the result).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn step_word(&mut self, n: u32) -> u64 {
        assert!(n <= 64, "step_word collects at most 64 bits");
        let mut w = 0u64;
        for _ in 0..n {
            w = (w << 1) | u64::from(self.step());
        }
        w
    }
}

impl BitStream for Lfsr {
    fn next_bit(&mut self) -> bool {
        self.step()
    }
}

/// A Galois (internal-XOR) LFSR over the same polynomial family.
///
/// Functionally equivalent to the Fibonacci form (same maximal period,
/// decimated sequence) but with the XOR gates *inside* the shift chain,
/// which is what synthesis tools typically infer for high clock rates —
/// each register has at most one XOR in front of it. Provided so the
/// sampler can be studied in either topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaloisLfsr {
    state: u128,
    taps_mask: u128,
    width: u32,
    mask: u128,
}

impl GaloisLfsr {
    /// Create a Galois LFSR from the same tap specification used by the
    /// Fibonacci form.
    ///
    /// # Panics
    ///
    /// Panics on invalid width/taps (programming errors).
    pub fn new(spec: TapSpec, seed: u128) -> GaloisLfsr {
        assert!(spec.width >= 1 && spec.width <= 128, "width out of range");
        let mask = if spec.width == 128 {
            u128::MAX
        } else {
            (1u128 << spec.width) - 1
        };
        // Feedback mask = the polynomial minus its leading term: the
        // coefficient of x^e lands on bit e, plus the constant term x^0.
        let mut taps_mask = 1u128;
        for &t in &spec.taps {
            if t != 0 && t != spec.width {
                taps_mask |= 1u128 << t;
            }
        }
        let mut state = seed & mask;
        if state == 0 {
            state = 1;
        }
        GaloisLfsr {
            state,
            taps_mask,
            width: spec.width,
            mask,
        }
    }

    /// Maximal-length Galois LFSR of a given width.
    pub fn maximal(width: u32, seed: u64) -> Option<GaloisLfsr> {
        TapSpec::maximal(width).map(|s| GaloisLfsr::new(s, seed as u128))
    }

    /// Current state.
    pub fn state(&self) -> u128 {
        self.state
    }

    /// Step one cycle, returning the output bit (the MSB shifted out).
    pub fn step(&mut self) -> bool {
        let out = (self.state >> (self.width - 1)) & 1 == 1;
        self.state = (self.state << 1) & self.mask;
        if out {
            self.state ^= self.taps_mask;
        }
        out
    }
}

impl BitStream for GaloisLfsr {
    fn next_bit(&mut self) -> bool {
        self.step()
    }
}

/// A bank of independently-seeded LFSRs stepped in lock-step.
///
/// Used wherever the hardware instantiates several physical LFSRs in
/// parallel: the Bernoulli gate network (one register per gate input)
/// and the CLT Gaussian sampler (one register per accumulated uniform).
#[derive(Debug, Clone)]
pub struct LfsrBank {
    regs: Vec<Lfsr>,
}

impl LfsrBank {
    /// Create `n` LFSRs of `width` bits with seeds derived from `seed`
    /// by SplitMix64 so the registers start in decorrelated states.
    ///
    /// # Panics
    ///
    /// Panics if no maximal tap table entry exists for `width`.
    pub fn new(n: usize, width: u32, seed: u64) -> LfsrBank {
        let spec = TapSpec::maximal(width)
            .unwrap_or_else(|| panic!("no maximal LFSR taps known for width {width}"));
        let mut s = crate::SoftRng::new(seed);
        let regs = (0..n)
            .map(|_| {
                let hi = s.next_u64() as u128;
                let lo = s.next_u64() as u128;
                Lfsr::new(spec, (hi << 64) | lo)
            })
            .collect();
        LfsrBank { regs }
    }

    /// Number of registers in the bank.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Step every register once, returning the output bits LSB-first:
    /// bit `i` of the result is register `i`'s output.
    pub fn step_all(&mut self) -> u128 {
        let mut w = 0u128;
        for (i, r) in self.regs.iter_mut().enumerate() {
            if r.step() {
                w |= 1u128 << i;
            }
        }
        w
    }

    /// Mutable access to an individual register.
    pub fn reg_mut(&mut self, i: usize) -> &mut Lfsr {
        &mut self.regs[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_rejects_zero_seed() {
        let l = Lfsr::maximal(8, 0).expect("8-bit taps known");
        assert_ne!(l.state(), 0, "zero seed must be coerced to non-zero");
    }

    #[test]
    fn lfsr_period_is_maximal_8bit() {
        let spec = TapSpec::maximal(8).expect("entry");
        let mut l = Lfsr::new(spec, 0x5A);
        let start = l.state();
        let mut period = 0u64;
        loop {
            l.step();
            period += 1;
            if l.state() == start {
                break;
            }
            assert!(period <= 1 << 9, "period exceeded 2^9, not maximal");
        }
        assert_eq!(period, 255, "8-bit maximal LFSR period must be 2^8-1");
    }

    #[test]
    fn lfsr_period_is_maximal_16bit() {
        let mut l = Lfsr::maximal(16, 0xACE1).expect("entry");
        let start = l.state();
        let mut period = 0u64;
        loop {
            l.step();
            period += 1;
            if l.state() == start {
                break;
            }
            assert!(period <= 1 << 17);
        }
        assert_eq!(period, 65_535);
    }

    #[test]
    fn lfsr_visits_every_nonzero_state_12bit() {
        // Maximality means the orbit covers all 2^n - 1 non-zero states.
        let mut l = Lfsr::maximal(12, 1).expect("entry");
        let mut seen = vec![false; 1 << 12];
        for _ in 0..(1 << 12) - 1 {
            let s = l.state() as usize;
            assert!(!seen[s], "state revisited before full period");
            seen[s] = true;
            l.step();
        }
        assert!(!seen[0], "all-zero state must never occur");
        assert_eq!(seen.iter().filter(|&&b| b).count(), (1 << 12) - 1);
    }

    #[test]
    fn paper_128_runs_and_is_balanced() {
        let mut l = Lfsr::paper_128(0xDEAD_BEEF_0BAD_F00D_u128);
        let n = 100_000;
        let ones: u32 = (0..n).map(|_| u32::from(l.step())).sum();
        let frac = f64::from(ones) / f64::from(n);
        assert!((frac - 0.5).abs() < 0.01, "bit bias too large: {frac}");
    }

    #[test]
    fn paper_128_serial_correlation_is_small() {
        let mut l = Lfsr::paper_128(12345);
        let n = 100_000usize;
        let bits: Vec<f64> = (0..n).map(|_| f64::from(u8::from(l.step()))).collect();
        let mean = bits.iter().sum::<f64>() / n as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..n - 1 {
            num += (bits[i] - mean) * (bits[i + 1] - mean);
        }
        for b in &bits {
            den += (b - mean) * (b - mean);
        }
        let rho = num / den;
        assert!(rho.abs() < 0.02, "lag-1 correlation too large: {rho}");
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        // Low-entropy seeds like 1 and 2 emit identical all-zero
        // prefixes from the MSB tap, so use spread seeds as LfsrBank does.
        let mut a = Lfsr::paper_128(0x1234_5678_9ABC_DEF0_1111_2222_3333_4444);
        let mut b = Lfsr::paper_128(0x0FED_CBA9_8765_4321_5555_6666_7777_8888);
        let wa = a.step_word(64);
        let wb = b.step_word(64);
        assert_ne!(wa, wb);
    }

    #[test]
    fn bank_steps_lock_step() {
        let mut bank = LfsrBank::new(4, 16, 99);
        assert_eq!(bank.len(), 4);
        let _ = bank.step_all();
        for i in 0..4 {
            assert_eq!(bank.reg_mut(i).cycles(), 1);
        }
    }

    #[test]
    fn galois_period_is_maximal_8bit() {
        let mut l = GaloisLfsr::maximal(8, 0x5A).expect("entry");
        let start = l.state();
        let mut period = 0u64;
        loop {
            l.step();
            period += 1;
            if l.state() == start {
                break;
            }
            assert!(period <= 1 << 9, "period exceeded 2^9");
        }
        assert_eq!(period, 255, "Galois form shares the maximal period");
    }

    #[test]
    fn galois_period_is_maximal_16bit() {
        let mut l = GaloisLfsr::maximal(16, 0xACE1).expect("entry");
        let start = l.state();
        let mut period = 0u64;
        loop {
            l.step();
            period += 1;
            if l.state() == start {
                break;
            }
            assert!(period <= 1 << 17);
        }
        assert_eq!(period, 65_535);
    }

    #[test]
    fn galois_is_balanced() {
        let mut l = GaloisLfsr::maximal(64, 0xDEAD_BEEF).expect("entry");
        let n = 50_000;
        let ones: u32 = (0..n).map(|_| u32::from(l.step())).sum();
        let frac = f64::from(ones) / f64::from(n);
        assert!((frac - 0.5).abs() < 0.02, "bit bias {frac}");
    }

    #[test]
    fn step_word_collects_msb_first() {
        let mut l = Lfsr::maximal(8, 0xF0).expect("entry");
        let mut reference = Lfsr::maximal(8, 0xF0).expect("entry");
        let w = l.step_word(8);
        for i in 0..8 {
            let bit = reference.step();
            assert_eq!((w >> (7 - i)) & 1 == 1, bit);
        }
    }
}
