//! Hardware-faithful random number generation for the BNN accelerator.
//!
//! This crate models the random-number subsystem of the DAC'21 FPGA
//! accelerator for Monte Carlo Dropout (MCD) Bayesian neural networks:
//!
//! * [`Lfsr`] — bit-accurate Fibonacci linear feedback shift registers,
//!   including the paper's 128-bit 4-tap configuration
//!   ([`Lfsr::paper_128`]).
//! * [`BernoulliSampler`] — the paper's Figure 3 pipeline: a bank of
//!   LFSRs combined by a gate network, a serial-in-parallel-out (SIPO)
//!   register forming `P_F`-bit dropout masks and a FIFO decoupling the
//!   sampler from the neural network engine.
//! * [`CltGaussianSampler`] / [`BoxMullerFixedSampler`] — fixed-point
//!   Gaussian samplers of the kind used by weight-sampling BNN
//!   accelerators such as VIBNN (reproduced as a baseline in
//!   `bnn-platforms`).
//! * [`SoftRng`] — a deterministic SplitMix64-based software PRNG used
//!   everywhere the *experiments* (not the hardware model) need
//!   randomness, so every run is reproducible from a seed.
//!
//! # Example
//!
//! Generate a filter-wise MCD mask exactly like the hardware would:
//!
//! ```
//! use bnn_rng::{BernoulliSampler, DropProbability};
//!
//! // p = 0.25 via two LFSRs and an AND gate, as in the paper.
//! let p = DropProbability::new(1, 2).expect("1/2^2 = 0.25");
//! let mut sampler = BernoulliSampler::new(p, 64, 128, 0xB00Bu64);
//! let mask = sampler.generate_mask(64);
//! assert_eq!(mask.len(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bernoulli;
mod fifo;
mod gaussian;
mod lfsr;
mod soft;

pub use bernoulli::{BernoulliSampler, DropProbability, GateNetwork, SamplerStats, Sipo};
pub use fifo::{Fifo, FifoFullError};
pub use gaussian::{BoxMullerFixedSampler, CltGaussianSampler, GaussianSampler};
pub use lfsr::{GaloisLfsr, Lfsr, LfsrBank, TapSpec};
pub use soft::SoftRng;

/// A source of single pseudo-random bits, one per hardware cycle.
///
/// Implemented by [`Lfsr`] and by gate combinations of several LFSRs.
/// The trait is object-safe so heterogeneous bit sources can be mixed
/// in a [`GateNetwork`].
pub trait BitStream {
    /// Advance one cycle and return the produced bit.
    fn next_bit(&mut self) -> bool;
}
