//! Deterministic software PRNG used by experiments (dataset synthesis,
//! weight initialisation, software-mode dropout).
//!
//! The crate deliberately avoids `rand`: every stochastic experiment in
//! the reproduction must be bit-for-bit reproducible from a single
//! `u64` seed, and the hardware models provide their own entropy
//! (LFSRs). SplitMix64 is small, fast and passes BigCrush when used as
//! a 64-bit generator.

/// SplitMix64-based software PRNG with convenience samplers.
///
/// # Example
///
/// ```
/// use bnn_rng::SoftRng;
///
/// let mut rng = SoftRng::new(42);
/// let x = rng.next_f32();
/// assert!((0.0..1.0).contains(&x));
/// let n = rng.normal_f32(0.0, 1.0);
/// assert!(n.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftRng {
    state: u64,
    cached_normal: Option<u64>, // bit pattern of an f64
}

impl SoftRng {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> SoftRng {
        SoftRng {
            state: seed,
            cached_normal: None,
        }
    }

    /// Derive an independent child generator (for parallel streams).
    pub fn fork(&mut self) -> SoftRng {
        SoftRng::new(self.next_u64() ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)` as `f32`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * bound,
        // negligible for the dataset sizes used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform in `[lo, hi)` as `f32`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.range_f64(f64::from(lo), f64::from(hi)) as f32
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// `len` independent Bernoulli draws with probability `p` of
    /// `true`.
    ///
    /// When `p` is exactly representable as `k/256` — which covers the
    /// paper's `p = 0.25` and every hardware-legal [`crate::DropProbability`]
    /// with at most 8 fractional bits — the draws come eight at a time
    /// from the bytes of one [`SoftRng::next_u64`]: each byte is
    /// uniform over `0..256`, so `byte < k` is exactly Bernoulli(k/256).
    /// That makes bulk mask drawing ~4× cheaper than per-draw
    /// [`SoftRng::bernoulli`], which matters because the MCD engine
    /// draws all `S` sample masks *serially* before fanning out.
    /// Other `p` fall back to one draw per decision. Either way the
    /// stream is a pure function of the seed.
    pub fn bernoulli_many(&mut self, p: f64, len: usize) -> Vec<bool> {
        let scaled = p * 256.0;
        if scaled.fract() == 0.0 && (0.0..=256.0).contains(&scaled) {
            let t = scaled as u16;
            let mut out = Vec::with_capacity(len);
            while out.len() < len {
                let mut word = self.next_u64();
                let take = (len - out.len()).min(8);
                for _ in 0..take {
                    out.push(u16::from(word as u8) < t);
                    word >>= 8;
                }
            }
            out
        } else {
            (0..len).map(|_| self.bernoulli(p)).collect()
        }
    }

    /// Standard normal draw (Box–Muller, cached pair).
    pub fn normal_f64(&mut self, mean: f64, std: f64) -> f64 {
        if let Some(bits) = self.cached_normal.take() {
            return mean + std * f64::from_bits(bits);
        }
        // Avoid u1 == 0 exactly.
        let u1 = (self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let z0 = r * theta.cos();
        let z1 = r * theta.sin();
        self.cached_normal = Some(z1.to_bits());
        mean + std * z0
    }

    /// Standard normal draw as `f32`.
    pub fn normal_f32(&mut self, mean: f32, std: f32) -> f32 {
        self.normal_f64(f64::from(mean), f64::from(std)) as f32
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_from_seed() {
        let mut a = SoftRng::new(7);
        let mut b = SoftRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut a = SoftRng::new(7);
        let mut c = a.fork();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = SoftRng::new(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "uniform mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SoftRng::new(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal_f64(2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 2.0).abs() < 0.05, "normal mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "normal var {var}");
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = SoftRng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets should be hit");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SoftRng::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = SoftRng::new(17);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.25)).count();
        let rate = hits as f64 / f64::from(n);
        assert!((rate - 0.25).abs() < 0.01, "bernoulli rate {rate}");
    }
}
