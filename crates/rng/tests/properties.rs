//! Property-based tests of the RNG hardware models.

use bnn_rng::{BernoulliSampler, DropProbability, Fifo, Lfsr, SoftRng, TapSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any non-zero seed keeps the LFSR out of the lock-up state forever
    /// (well, for a few thousand cycles).
    #[test]
    fn lfsr_never_reaches_zero(seed in 1u64..u64::MAX, width in prop_oneof![
        Just(8u32), Just(16), Just(24), Just(32), Just(64), Just(128)
    ]) {
        let mut l = Lfsr::maximal(width, seed).expect("tap table entry");
        for _ in 0..2000 {
            l.step();
            prop_assert_ne!(l.state(), 0);
        }
    }

    /// The masked state always fits the register width.
    #[test]
    fn lfsr_state_fits_width(seed in 1u128..u128::MAX, width in prop_oneof![
        Just(8u32), Just(16), Just(31), Just(64)
    ]) {
        let spec = TapSpec::maximal(width).expect("entry");
        let mut l = Lfsr::new(spec, seed);
        for _ in 0..100 {
            l.step();
            prop_assert!(l.state() < (1u128 << width));
        }
    }

    /// Masks have exactly the requested length for any filter count.
    #[test]
    fn mask_length_always_exact(filters in 1usize..300, pf in 1usize..128, seed in 0u64..1000) {
        let mut s = BernoulliSampler::new(DropProbability::quarter(), pf.max(1), 16, seed);
        let m = s.generate_mask(filters);
        prop_assert_eq!(m.len(), filters);
    }

    /// The sampler never produces a drop rate wildly off its target,
    /// whatever the gate configuration.
    #[test]
    fn gate_network_rate_tracks_probability(num in 1u32..15, log2 in 1u32..4, seed in 0u64..50) {
        prop_assume!(num < (1 << log2));
        let p = DropProbability::new(num, log2).expect("validated");
        let mut s = BernoulliSampler::new(p, 32, 16, seed);
        let mut dropped = 0usize;
        let total = 8000usize;
        for _ in 0..total / 32 {
            dropped += s.generate_mask(32).iter().filter(|&&k| !k).count();
        }
        let rate = dropped as f64 / total as f64;
        prop_assert!((rate - p.value()).abs() < 0.08,
            "rate {} vs target {}", rate, p.value());
    }

    /// FIFO drains exactly what was pushed, in order.
    #[test]
    fn fifo_fifo_order(cap in 1usize..32, ops in proptest::collection::vec(0u8..2, 1..100)) {
        let mut f: Fifo<u32> = Fifo::new(cap);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut next = 0u32;
        for op in ops {
            if op == 0 {
                if f.push(next).is_ok() {
                    model.push_back(next);
                }
                next += 1;
            } else {
                prop_assert_eq!(f.pop(), model.pop_front());
            }
            prop_assert_eq!(f.len(), model.len());
        }
    }

    /// SplitMix64 uniform outputs stay in [0,1) and shuffles permute.
    #[test]
    fn softrng_invariants(seed in 0u64..u64::MAX) {
        let mut r = SoftRng::new(seed);
        for _ in 0..100 {
            let u = r.next_f64();
            prop_assert!((0.0..1.0).contains(&u));
        }
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    /// `bernoulli_many` off the byte-threshold grid is the serial
    /// `bernoulli` loop: same bits *and* same stream consumption. (On
    /// the grid the fast path takes over — covered below.)
    #[test]
    fn bernoulli_many_general_p_matches_serial_bit_for_bit(
        seed in 0u64..10_000,
        len in 0usize..70,
        p in 0.0f64..1.0,
    ) {
        // A uniform f64 is never exactly k/256 in practice, but make
        // the assumption explicit so the property cannot silently
        // drift onto the fast path.
        prop_assume!((p * 256.0).fract() != 0.0);
        let mut fast = SoftRng::new(seed);
        let mut serial = SoftRng::new(seed);
        let want: Vec<bool> = (0..len).map(|_| serial.bernoulli(p)).collect();
        let got = fast.bernoulli_many(p, len);
        prop_assert_eq!(&got, &want, "batched draws diverged from serial");
        // Both consumed the same stream prefix: the next draws agree.
        prop_assert_eq!(fast.next_u64(), serial.next_u64(), "stream positions diverged");
    }

    /// On the byte-threshold grid (`p = k/256`, which includes the
    /// paper's 0.25 and every hardware-legal drop probability), every
    /// draw is exactly `byte < k` over the raw SplitMix64 byte
    /// stream, one word per eight draws — the PR-3 fast path's whole
    /// contract, pinned directly instead of via the mask stream.
    #[test]
    fn bernoulli_many_byte_threshold_fast_path_is_exact(
        seed in 0u64..10_000,
        len in 0usize..70,
        k in 0u32..257,
    ) {
        let p = f64::from(k) / 256.0;
        let mut fast = SoftRng::new(seed);
        let got = fast.bernoulli_many(p, len);
        prop_assert_eq!(got.len(), len);

        // Reference: the documented contract, straight off the raw
        // word stream of an equally-seeded generator.
        let mut raw = SoftRng::new(seed);
        let mut want = Vec::with_capacity(len);
        while want.len() < len {
            let mut word = raw.next_u64();
            for _ in 0..(len - want.len()).min(8) {
                want.push(u32::from(word as u8) < k);
                word >>= 8;
            }
        }
        prop_assert_eq!(&got, &want, "fast path diverged from the byte-threshold contract");
        // Exactly ceil(len/8) words consumed: the continuations agree.
        prop_assert_eq!(fast.next_u64(), raw.next_u64(), "stream positions diverged");
    }

    /// The grid edges are degenerate Bernoullis: p = 0 never fires,
    /// p = 1 always does (the serial path cannot promise the latter —
    /// `next_f64() < 1.0` — which is why mask drawing asserts p < 1).
    #[test]
    fn bernoulli_many_degenerate_probabilities(seed in 0u64..10_000, len in 0usize..70) {
        let mut rng = SoftRng::new(seed);
        prop_assert!(rng.bernoulli_many(0.0, len).iter().all(|&b| !b));
        prop_assert!(rng.bernoulli_many(1.0, len).iter().all(|&b| b));
    }
}
