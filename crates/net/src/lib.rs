//! `bnn-net` — the dependency-free TCP front door over the
//! `bnn-serve` admission layer.
//!
//! The source paper's FPGA accelerator (Fan et al., DAC 2021) wins by
//! making Bayesian inference fast enough for real-time serving; this
//! crate is where those predictions stop being a library call and
//! start being a service. It is deliberately dependency-free — a
//! hand-rolled event loop on `std::net` (resident acceptor thread,
//! one worker per connection) rather than an async runtime, so the
//! offline build stays hermetic and the audited threading patterns
//! stay small enough to read in one sitting.
//!
//! Two framings share one port, sniffed from the first four bytes:
//!
//! * the **length-prefixed binary protocol** ([`wire`]) — request
//!   frames carry tenant id, priority, optional deadline, optional
//!   seed and an f32 input tensor; responses are a reply frame
//!   (probs + [`bnn_mcd::Uncertainty`] + [`bnn_mcd::CostReport`]
//!   slice, with the effective seed echoed for offline
//!   reproducibility) or a typed error frame. Version 2 adds a
//!   client-chosen correlation id, which unlocks **pipelining**: a
//!   [`PipelinedClient`] keeps up to `depth` requests in flight per
//!   connection, and the server upgrades that connection to a
//!   reader/writer pair bounded by [`NetConfig::max_pipeline`].
//!   Corr-less (v1) peers keep the lock-step loop unchanged;
//! * **minimal HTTP/1.1** — `GET /status` returns live JSON
//!   telemetry from the rolling-window [`monitor`] (p50/p99 latency,
//!   queue-depth and in-flight gauges, batch-size histogram,
//!   per-substrate cost aggregates, shed/expired/rejected counters);
//!   `GET /metrics` renders the same counters plus cumulative latency
//!   and per-stage span histograms as a Prometheus-style text
//!   exposition; `GET /trace` drains the `bnn-trace` span rings as a
//!   Chrome trace-event JSON document (empty unless tracing is
//!   enabled via [`bnn_trace::set_enabled`]).
//!
//! Admission is tenant-aware ([`tenant`]): each tenant gets a
//! priority ceiling and a token-bucket rate limit, mapped onto the
//! serve layer's priority scheduler, so the wire boundary cannot be
//! used to jump the queue.
//!
//! For measuring the whole stack under sustained traffic, [`loadgen`]
//! holds the deterministic planning and reporting layer behind the
//! `loadgen` binary: seeded closed- and open-loop arrival schedules,
//! per-class request mixes, log2-bucketed latency histograms and the
//! `BENCH_net.json` emission format.
//!
//! ```no_run
//! use bnn_net::{NetClient, NetConfig, NetServer, Request};
//! # fn demo(server: bnn_serve::Server, x: bnn_tensor::Tensor) -> std::io::Result<()> {
//! let front = NetServer::bind("127.0.0.1:0", server, NetConfig::default())?;
//! let mut client = NetClient::connect(front.local_addr())?;
//! let response = client.send(&Request::new(x).seed(42))?;
//! let status_json = bnn_net::http_get_status(front.local_addr())?;
//! # let _ = (response, status_json);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod monitor;
pub mod server;
pub mod tenant;
pub mod wire;

pub use client::{
    http_get, http_get_status, http_get_status_with, NetClient, PipelinedClient, Submitted,
    Timeouts,
};
pub use monitor::{CostAgg, Monitor, MonitorSnapshot};
pub use server::{NetConfig, NetServer};
pub use tenant::{RateLimited, TenantGate, TenantPolicy, TenantTable};
pub use wire::{
    DecodeError, EncodeError, ErrorCode, Request, Response, WireError, WireReply, MAX_FRAME,
    PROTOCOL_V2, PROTOCOL_VERSION,
};

use std::sync::{Mutex, MutexGuard};

/// Poisoning policy: a poisoned mutex here means another connection
/// worker panicked mid-update; the guarded state (telemetry rings,
/// token buckets, join handles) stays structurally valid, and
/// propagating the panic would take down an unrelated connection —
/// so every lock in this crate recovers the guard and continues.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
