//! The length-prefixed binary protocol, versions 1 and 2.
//!
//! Every frame on the wire is a little-endian `u32` payload length
//! followed by that many payload bytes. The payload's first two bytes
//! are always the protocol version ([`PROTOCOL_VERSION`] or
//! [`PROTOCOL_V2`]) and the frame kind; everything after is
//! kind-specific. All integers are little-endian; `f32`/`f64` travel
//! as their IEEE-754 bit patterns, so a reply's probabilities are
//! **bit-identical** to what the engine produced — the loopback
//! conformance suite depends on it.
//!
//! **Version 2 is version 1 plus correlation ids.** A v2 request may
//! carry a client-chosen `corr` id (flag bit 2); the server echoes it
//! in the answering reply or error frame, which lets a pipelined
//! client keep many requests in flight per connection and match
//! responses out of order. Frames without a correlation id are
//! encoded as v1 byte-for-byte, so lock-step v1 peers keep working
//! against a v2 server and vice versa — version negotiation is
//! per-frame, not per-connection.
//!
//! # Request frame (`kind = 1`)
//!
//! | field | type | notes |
//! |---|---|---|
//! | version | `u8` | [`PROTOCOL_VERSION`], or [`PROTOCOL_V2`] when flag bit 2 is used |
//! | kind | `u8` | `1` |
//! | flags | `u8` | bit 0: deadline present, bit 1: seed present, bit 2 (v2 only): corr present |
//! | priority | `u8` | `0` Low, `1` Normal, `2` High |
//! | tenant len | `u8` | tenant id length in bytes (0 = anonymous) |
//! | tenant | bytes | UTF-8 tenant id |
//! | deadline | `u64` | queue-time budget in µs (iff flag bit 0) |
//! | seed | `u64` | pinned mask-stream seed (iff flag bit 1) |
//! | corr | `u64` | client correlation id (iff flag bit 2; v2 only) |
//! | n, c, h, w | `4 × u32` | input shape; `n` must be 1 |
//! | data | `c·h·w × f32` | the input tensor, NCHW order |
//!
//! # Reply frame (`kind = 2`)
//!
//! | field | type | notes |
//! |---|---|---|
//! | version, kind | `u8, u8` | kind `2` |
//! | corr | `u64` | echoed correlation id (v2 frames only) |
//! | id | `u64` | server-assigned request id |
//! | seed | `u64` | **seed echo** — see below |
//! | coalesced | `u32` | requests in this reply's micro-batch |
//! | k | `u32` | number of classes |
//! | probs | `k × f32` | predictive probabilities |
//! | predicted | `u32` | argmax class |
//! | confidence | `f32` | max-prob confidence |
//! | entropy | `f64` | predictive entropy (nats) |
//! | mutual information | `f64` | BALD epistemic share (nats) |
//! | samples | `u64` | Monte Carlo samples served |
//! | batch | `u64` | input items (always 1 per request) |
//! | wall ms | `f64` | measured engine wall time |
//! | has model | `u8` | 1 if an analytic cost model follows |
//! | cycles | `u64` | modelled cycles (iff has model) |
//! | latency ms | `f64` | modelled latency (iff has model) |
//! | mem bytes | `u64` | modelled memory traffic (iff has model) |
//!
//! # Error frame (`kind = 3`)
//!
//! | field | type | notes |
//! |---|---|---|
//! | version, kind | `u8, u8` | kind `3` |
//! | code | `u8` | see [`ErrorCode`] |
//! | flags | `u8` | bit 0: id present, bit 1: seed present, bit 2 (v2 only): corr present |
//! | id | `u64` | request id, if one was assigned |
//! | seed | `u64` | seed echo, if one is known |
//! | corr | `u64` | echoed correlation id (iff flag bit 2; v2 only) |
//!
//! An error frame always echoes the correlation id of the request it
//! answers when that request carried one — so a typed error
//! mid-pipeline fails exactly its own request and no other. The one
//! exception is `Malformed`: the offending frame never decoded, so
//! there is no id to echo and the connection closes after the frame.
//!
//! # Seed echo
//!
//! Every reply carries the request's *effective* mask-stream seed:
//! the seed the client pinned, or — when none was sent — the
//! server-derived `request_seed(base_seed, id)`. Feeding that seed to
//! an offline `Session` (or `predictive_on` with a
//! `SoftwareMaskSource`) over the same input reproduces the reply's
//! probabilities bit for bit, so any answer that ever crossed the
//! wire can be re-derived and audited after the fact.
//!
//! # Decoder contract
//!
//! [`decode_request`] / [`decode_response`] never panic: every
//! malformed input — truncated frame, oversized length prefix, bad
//! version byte, unknown kind or priority, non-UTF-8 tenant id,
//! multi-item shape, trailing bytes — resolves to a typed
//! [`DecodeError`]. The `bnn-audit` panic rule covers this crate, so
//! the no-panic property is enforced statically as well as by the
//! malformed-input tests.

use bnn_mcd::{CostReport, ModelCost, Uncertainty};
use bnn_serve::{Priority, ServeError};
use bnn_tensor::{Shape4, Tensor};
use std::io::{self, Read, Write};

/// The baseline (lock-step) protocol version. Frames without a
/// correlation id are always encoded at this version.
pub const PROTOCOL_VERSION: u8 = 1;

/// Protocol version 2: version 1 plus correlation ids for pipelined
/// connections. Emitted only for frames that actually carry a `corr`
/// field, so v1 peers never see it unless they asked for it.
pub const PROTOCOL_V2: u8 = 2;

/// Hard bound on any frame payload (16 MiB): a length prefix past
/// this is rejected before any allocation, so a hostile or corrupt
/// prefix cannot balloon server memory.
pub const MAX_FRAME: usize = 1 << 24;

/// Frame kind: a prediction request.
pub const KIND_REQUEST: u8 = 1;
/// Frame kind: a served reply.
pub const KIND_REPLY: u8 = 2;
/// Frame kind: a typed error.
pub const KIND_ERROR: u8 = 3;

const FLAG_DEADLINE: u8 = 1;
const FLAG_SEED: u8 = 2;
const FLAG_ID: u8 = 1;
/// Request flag bit 2 / error flag bit 2: a correlation id follows
/// the other optional fields. Only defined at [`PROTOCOL_V2`].
const FLAG_CORR: u8 = 4;

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Tenant id (empty = anonymous, served under the default
    /// tenant policy).
    pub tenant: String,
    /// Requested admission class — the server clamps it to the
    /// tenant's priority ceiling.
    pub priority: Priority,
    /// Optional queue-time budget in microseconds.
    pub deadline_us: Option<u64>,
    /// Optional pinned mask-stream seed; absent means the server
    /// derives one from its base seed and the request id.
    pub seed: Option<u64>,
    /// Optional client correlation id (protocol v2). The server
    /// echoes it verbatim in the answering reply or error frame, so a
    /// pipelined client can match responses out of order.
    pub corr: Option<u64>,
    /// The single-item input tensor.
    pub input: Tensor,
}

impl Request {
    /// A plain request: anonymous tenant, normal priority, no
    /// deadline, server-derived seed.
    pub fn new(input: Tensor) -> Request {
        Request {
            tenant: String::new(),
            priority: Priority::Normal,
            deadline_us: None,
            seed: None,
            corr: None,
            input,
        }
    }

    /// Set the tenant id.
    pub fn tenant(mut self, tenant: &str) -> Request {
        self.tenant = tenant.to_string();
        self
    }

    /// Set the requested admission class.
    pub fn priority(mut self, priority: Priority) -> Request {
        self.priority = priority;
        self
    }

    /// Set the queue-time budget in microseconds.
    pub fn deadline_us(mut self, us: u64) -> Request {
        self.deadline_us = Some(us);
        self
    }

    /// Pin the mask-stream seed (the reproducibility hook).
    pub fn seed(mut self, seed: u64) -> Request {
        self.seed = Some(seed);
        self
    }

    /// Attach a correlation id (upgrades the frame to protocol v2).
    pub fn corr(mut self, corr: u64) -> Request {
        self.corr = Some(corr);
        self
    }
}

/// One decoded reply frame (`kind = 2`).
#[derive(Debug, Clone, PartialEq)]
pub struct WireReply {
    /// Echoed client correlation id (present iff the request carried
    /// one — a protocol-v2 frame).
    pub corr: Option<u64>,
    /// Server-assigned request id.
    pub id: u64,
    /// The effective mask-stream seed (see the module docs on seed
    /// echo).
    pub seed: u64,
    /// How many requests shared this reply's micro-batch.
    pub coalesced: u32,
    /// Predictive probabilities, one `f32` per class, bit-identical
    /// to the engine output.
    pub probs: Vec<f32>,
    /// Per-request uncertainty summary.
    pub uncertainty: Uncertainty,
    /// This request's slice of the engine cost report.
    pub cost: CostReport,
}

/// The typed error carried by an error frame (`kind = 3`) — the
/// wire-level superset of [`ServeError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Shed by admission control (queue at capacity).
    Rejected,
    /// The queue-time deadline passed before the micro-batch formed.
    DeadlineExceeded,
    /// The backend failed while serving (or the breaker is tripped).
    BackendFailed,
    /// The server shut down before the request was served.
    Shutdown,
    /// The tenant's token bucket is empty — retry after backing off.
    RateLimited,
    /// The request frame could not be decoded; the server closes the
    /// connection after sending this.
    Malformed,
}

impl ErrorCode {
    /// Wire byte for this code.
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Rejected => 1,
            ErrorCode::DeadlineExceeded => 2,
            ErrorCode::BackendFailed => 3,
            ErrorCode::Shutdown => 4,
            ErrorCode::RateLimited => 5,
            ErrorCode::Malformed => 6,
        }
    }

    /// Decode a wire byte.
    pub fn from_u8(byte: u8) -> Option<ErrorCode> {
        match byte {
            1 => Some(ErrorCode::Rejected),
            2 => Some(ErrorCode::DeadlineExceeded),
            3 => Some(ErrorCode::BackendFailed),
            4 => Some(ErrorCode::Shutdown),
            5 => Some(ErrorCode::RateLimited),
            6 => Some(ErrorCode::Malformed),
            _ => None,
        }
    }
}

impl From<ServeError> for ErrorCode {
    fn from(err: ServeError) -> ErrorCode {
        match err {
            ServeError::Rejected => ErrorCode::Rejected,
            ServeError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            ServeError::BackendFailed => ErrorCode::BackendFailed,
            ServeError::Shutdown => ErrorCode::Shutdown,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorCode::Rejected => "rejected by admission control",
            ErrorCode::DeadlineExceeded => "queue-time deadline exceeded",
            ErrorCode::BackendFailed => "backend failed",
            ErrorCode::Shutdown => "server shut down",
            ErrorCode::RateLimited => "tenant rate limit exceeded",
            ErrorCode::Malformed => "malformed request frame",
        })
    }
}

/// One decoded error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError {
    /// Why the request failed.
    pub code: ErrorCode,
    /// The request id, if admission had already assigned one.
    pub id: Option<u64>,
    /// The effective seed, if one is known (pinned by the client, or
    /// derived once the id was assigned).
    pub seed: Option<u64>,
    /// Echoed client correlation id, when the failed request carried
    /// one — this is what lets a typed error mid-pipeline fail only
    /// its own request.
    pub corr: Option<u64>,
}

/// A decoded server-to-client frame: a reply or a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request was served.
    Reply(WireReply),
    /// The request failed with a typed code.
    Error(WireError),
}

/// Why a frame payload failed to decode. Every variant is a typed,
/// non-panicking outcome — the decoder's whole contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before a field it promised.
    Truncated {
        /// Bytes the field needed.
        expected: usize,
        /// Bytes actually left.
        got: usize,
    },
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// The claimed payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The version byte is neither [`PROTOCOL_VERSION`] nor
    /// [`PROTOCOL_V2`].
    BadVersion(u8),
    /// The kind byte names no known frame kind.
    BadKind(u8),
    /// The flags byte carries bits this version does not define.
    BadFlags(u8),
    /// The priority byte names no admission class.
    BadPriority(u8),
    /// The tenant id bytes are not UTF-8.
    BadTenant,
    /// The input shape is unusable (zero axis, `n != 1`, or an
    /// element count past the frame bound).
    BadShape {
        /// Items (must be 1).
        n: u32,
        /// Channels.
        c: u32,
        /// Height.
        h: u32,
        /// Width.
        w: u32,
    },
    /// The error-code byte names no [`ErrorCode`].
    BadErrorCode(u8),
    /// Bytes remained after the last promised field.
    TrailingBytes {
        /// Leftover byte count.
        extra: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated frame: field needs {expected} byte(s), {got} left"
                )
            }
            DecodeError::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: length prefix {len} exceeds the {max}-byte bound"
                )
            }
            DecodeError::BadVersion(v) => {
                write!(
                    f,
                    "bad version byte {v} (this build speaks {PROTOCOL_VERSION} and {PROTOCOL_V2})"
                )
            }
            DecodeError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::BadFlags(b) => write!(f, "undefined flag bits in {b:#04x}"),
            DecodeError::BadPriority(p) => write!(f, "unknown priority byte {p}"),
            DecodeError::BadTenant => f.write_str("tenant id is not UTF-8"),
            DecodeError::BadShape { n, c, h, w } => {
                write!(
                    f,
                    "unusable input shape ({n}, {c}, {h}, {w}): requests are single-item"
                )
            }
            DecodeError::BadErrorCode(c) => write!(f, "unknown error code {c}"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the last field")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Why a frame could not be encoded (caller-side validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// Tenant ids travel behind a `u8` length.
    TenantTooLong(usize),
    /// Requests are single-item (`n == 1`).
    MultiItemInput(usize),
    /// The encoded payload would exceed [`MAX_FRAME`].
    FrameTooLarge(usize),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::TenantTooLong(len) => {
                write!(f, "tenant id is {len} bytes (maximum 255)")
            }
            EncodeError::MultiItemInput(n) => {
                write!(f, "request input has {n} items (requests are single-item)")
            }
            EncodeError::FrameTooLarge(len) => {
                write!(f, "encoded payload is {len} bytes (maximum {MAX_FRAME})")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Bounds-checked little-endian reader over one frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated {
            expected: n,
            got: self.buf.len().saturating_sub(self.pos),
        })?;
        match self.buf.get(self.pos..end) {
            Some(slice) => {
                self.pos = end;
                Ok(slice)
            }
            None => Err(DecodeError::Truncated {
                expected: n,
                got: self.buf.len().saturating_sub(self.pos),
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// The decoder's final check: every byte must belong to a field.
    fn finish(&self) -> Result<(), DecodeError> {
        let extra = self.buf.len().saturating_sub(self.pos);
        if extra > 0 {
            return Err(DecodeError::TrailingBytes { extra });
        }
        Ok(())
    }
}

fn priority_byte(p: Priority) -> u8 {
    match p {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    }
}

fn priority_from(byte: u8) -> Result<Priority, DecodeError> {
    match byte {
        0 => Ok(Priority::Low),
        1 => Ok(Priority::Normal),
        2 => Ok(Priority::High),
        other => Err(DecodeError::BadPriority(other)),
    }
}

/// Encode a request payload into `out` (cleared first).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    out.clear();
    if req.tenant.len() > u8::MAX as usize {
        return Err(EncodeError::TenantTooLong(req.tenant.len()));
    }
    let shape = req.input.shape();
    if shape.n != 1 {
        return Err(EncodeError::MultiItemInput(shape.n));
    }
    out.push(if req.corr.is_some() {
        PROTOCOL_V2
    } else {
        PROTOCOL_VERSION
    });
    out.push(KIND_REQUEST);
    let mut flags = 0u8;
    if req.deadline_us.is_some() {
        flags |= FLAG_DEADLINE;
    }
    if req.seed.is_some() {
        flags |= FLAG_SEED;
    }
    if req.corr.is_some() {
        flags |= FLAG_CORR;
    }
    out.push(flags);
    out.push(priority_byte(req.priority));
    out.push(req.tenant.len() as u8);
    out.extend_from_slice(req.tenant.as_bytes());
    if let Some(us) = req.deadline_us {
        out.extend_from_slice(&us.to_le_bytes());
    }
    if let Some(seed) = req.seed {
        out.extend_from_slice(&seed.to_le_bytes());
    }
    if let Some(corr) = req.corr {
        out.extend_from_slice(&corr.to_le_bytes());
    }
    for dim in [shape.n, shape.c, shape.h, shape.w] {
        out.extend_from_slice(&(dim as u32).to_le_bytes());
    }
    for v in req.input.as_slice() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    if out.len() > MAX_FRAME {
        let len = out.len();
        out.clear();
        return Err(EncodeError::FrameTooLarge(len));
    }
    Ok(())
}

/// Decode a request payload. Never panics: every malformed input
/// resolves to a typed [`DecodeError`].
pub fn decode_request(payload: &[u8]) -> Result<Request, DecodeError> {
    let mut cur = Cursor::new(payload);
    let version = cur.u8()?;
    if version != PROTOCOL_VERSION && version != PROTOCOL_V2 {
        return Err(DecodeError::BadVersion(version));
    }
    let kind = cur.u8()?;
    if kind != KIND_REQUEST {
        return Err(DecodeError::BadKind(kind));
    }
    let flags = cur.u8()?;
    // FLAG_CORR is defined only at v2; a v1 frame carrying it is as
    // malformed as any other undefined bit.
    let defined = if version == PROTOCOL_V2 {
        FLAG_DEADLINE | FLAG_SEED | FLAG_CORR
    } else {
        FLAG_DEADLINE | FLAG_SEED
    };
    if flags & !defined != 0 {
        return Err(DecodeError::BadFlags(flags));
    }
    let priority = priority_from(cur.u8()?)?;
    let tenant_len = cur.u8()? as usize;
    let tenant = std::str::from_utf8(cur.take(tenant_len)?)
        .map_err(|_| DecodeError::BadTenant)?
        .to_string();
    let deadline_us = if flags & FLAG_DEADLINE != 0 {
        Some(cur.u64()?)
    } else {
        None
    };
    let seed = if flags & FLAG_SEED != 0 {
        Some(cur.u64()?)
    } else {
        None
    };
    let corr = if flags & FLAG_CORR != 0 {
        Some(cur.u64()?)
    } else {
        None
    };
    let (n, c, h, w) = (cur.u32()?, cur.u32()?, cur.u32()?, cur.u32()?);
    // `n == 1` keeps the serving front door's single-input contract
    // (the admission layer asserts it). The element count uses
    // checked multiplication — three attacker-chosen u32 dims can
    // overflow u64 — and is bounded by `MAX_FRAME / 4` so the f32
    // data length stays inside the frame bound with no further
    // (overflowable) multiply.
    if n != 1 || c == 0 || h == 0 || w == 0 {
        return Err(DecodeError::BadShape { n, c, h, w });
    }
    let elems = [c, h, w]
        .iter()
        .try_fold(1u64, |acc, &d| acc.checked_mul(u64::from(d)))
        .filter(|&e| e <= (MAX_FRAME / 4) as u64);
    let elems = match elems {
        Some(e) => e as usize,
        None => return Err(DecodeError::BadShape { n, c, h, w }),
    };
    let mut data = Vec::with_capacity(elems);
    for _ in 0..elems {
        data.push(cur.f32()?);
    }
    cur.finish()?;
    Ok(Request {
        tenant,
        priority,
        deadline_us,
        seed,
        corr,
        input: Tensor::from_vec(
            Shape4::new(n as usize, c as usize, h as usize, w as usize),
            data,
        ),
    })
}

/// Encode a served reply (the serve-layer [`bnn_serve::Reply`] plus
/// its effective seed and, for protocol-v2 requests, the echoed
/// correlation id) into `out` (cleared first).
pub fn encode_reply(reply: &bnn_serve::Reply, seed: u64, corr: Option<u64>, out: &mut Vec<u8>) {
    out.clear();
    match corr {
        Some(corr) => {
            out.push(PROTOCOL_V2);
            out.push(KIND_REPLY);
            out.extend_from_slice(&corr.to_le_bytes());
        }
        None => {
            out.push(PROTOCOL_VERSION);
            out.push(KIND_REPLY);
        }
    }
    out.extend_from_slice(&reply.id.to_le_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(reply.coalesced)
            .unwrap_or(u32::MAX)
            .to_le_bytes(),
    );
    let probs = reply.probs.item(0);
    out.extend_from_slice(&u32::try_from(probs.len()).unwrap_or(u32::MAX).to_le_bytes());
    for p in probs {
        out.extend_from_slice(&p.to_bits().to_le_bytes());
    }
    let u = &reply.uncertainty;
    out.extend_from_slice(&u32::try_from(u.predicted).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(&u.confidence.to_bits().to_le_bytes());
    out.extend_from_slice(&u.entropy.to_bits().to_le_bytes());
    out.extend_from_slice(&u.mutual_information.to_bits().to_le_bytes());
    let cost = &reply.cost;
    out.extend_from_slice(&(cost.samples as u64).to_le_bytes());
    out.extend_from_slice(&(cost.batch as u64).to_le_bytes());
    out.extend_from_slice(&cost.wall_ms.to_bits().to_le_bytes());
    match cost.model {
        Some(model) => {
            out.push(1);
            out.extend_from_slice(&model.cycles.to_le_bytes());
            out.extend_from_slice(&model.latency_ms.to_bits().to_le_bytes());
            out.extend_from_slice(&model.mem_bytes.to_le_bytes());
        }
        None => out.push(0),
    }
}

/// Encode a typed error frame into `out` (cleared first). A `corr`
/// echo upgrades the frame to protocol v2.
pub fn encode_error(
    code: ErrorCode,
    id: Option<u64>,
    seed: Option<u64>,
    corr: Option<u64>,
    out: &mut Vec<u8>,
) {
    out.clear();
    out.push(if corr.is_some() {
        PROTOCOL_V2
    } else {
        PROTOCOL_VERSION
    });
    out.push(KIND_ERROR);
    out.push(code.as_u8());
    let mut flags = 0u8;
    if id.is_some() {
        flags |= FLAG_ID;
    }
    if seed.is_some() {
        flags |= FLAG_SEED;
    }
    if corr.is_some() {
        flags |= FLAG_CORR;
    }
    out.push(flags);
    if let Some(id) = id {
        out.extend_from_slice(&id.to_le_bytes());
    }
    if let Some(seed) = seed {
        out.extend_from_slice(&seed.to_le_bytes());
    }
    if let Some(corr) = corr {
        out.extend_from_slice(&corr.to_le_bytes());
    }
}

/// Decode a server-to-client payload (reply or error frame). Never
/// panics; every malformed input resolves to a typed [`DecodeError`].
pub fn decode_response(payload: &[u8]) -> Result<Response, DecodeError> {
    let mut cur = Cursor::new(payload);
    let version = cur.u8()?;
    if version != PROTOCOL_VERSION && version != PROTOCOL_V2 {
        return Err(DecodeError::BadVersion(version));
    }
    let kind = cur.u8()?;
    match kind {
        KIND_REPLY => {
            // A v2 reply always opens with the echoed correlation id.
            let corr = if version == PROTOCOL_V2 {
                Some(cur.u64()?)
            } else {
                None
            };
            let id = cur.u64()?;
            let seed = cur.u64()?;
            let coalesced = cur.u32()?;
            let k = cur.u32()? as usize;
            // u64 compare: `k * 4` could wrap usize on 32-bit hosts.
            if k as u64 > (MAX_FRAME / 4) as u64 {
                return Err(DecodeError::BadShape {
                    n: 1,
                    c: k as u32,
                    h: 1,
                    w: 1,
                });
            }
            let mut probs = Vec::with_capacity(k);
            for _ in 0..k {
                probs.push(cur.f32()?);
            }
            let uncertainty = Uncertainty {
                predicted: cur.u32()? as usize,
                confidence: cur.f32()?,
                entropy: cur.f64()?,
                mutual_information: cur.f64()?,
            };
            let samples = cur.u64()? as usize;
            let batch = cur.u64()? as usize;
            let wall_ms = cur.f64()?;
            let model = match cur.u8()? {
                0 => None,
                _ => Some(ModelCost {
                    cycles: cur.u64()?,
                    latency_ms: cur.f64()?,
                    mem_bytes: cur.u64()?,
                }),
            };
            cur.finish()?;
            Ok(Response::Reply(WireReply {
                corr,
                id,
                seed,
                coalesced,
                probs,
                uncertainty,
                cost: CostReport {
                    samples,
                    batch,
                    wall_ms,
                    model,
                },
            }))
        }
        KIND_ERROR => {
            let code_byte = cur.u8()?;
            let code = ErrorCode::from_u8(code_byte).ok_or(DecodeError::BadErrorCode(code_byte))?;
            let flags = cur.u8()?;
            let defined = if version == PROTOCOL_V2 {
                FLAG_ID | FLAG_SEED | FLAG_CORR
            } else {
                FLAG_ID | FLAG_SEED
            };
            if flags & !defined != 0 {
                return Err(DecodeError::BadFlags(flags));
            }
            let id = if flags & FLAG_ID != 0 {
                Some(cur.u64()?)
            } else {
                None
            };
            let seed = if flags & FLAG_SEED != 0 {
                Some(cur.u64()?)
            } else {
                None
            };
            let corr = if flags & FLAG_CORR != 0 {
                Some(cur.u64()?)
            } else {
                None
            };
            cur.finish()?;
            Ok(Response::Error(WireError {
                code,
                id,
                seed,
                corr,
            }))
        }
        other => Err(DecodeError::BadKind(other)),
    }
}

/// Write one frame (length prefix + payload) to `w`.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            EncodeError::FrameTooLarge(payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// How many consecutive mid-frame read timeouts [`read_frame`]
/// tolerates before declaring the frame stalled. With the serving
/// default 50 ms read timeout this is ~5 s of silence in the middle
/// of a frame — an idle connection (no frame started) times out on
/// the *first* read instead, so polling loops stay responsive.
const MAX_FRAME_STALLS: usize = 100;

/// Read one length-prefixed frame from `r`.
///
/// * `Ok(Some(payload))` — a complete frame arrived;
/// * `Ok(None)` — the peer closed the connection cleanly before
///   starting a frame;
/// * `Err(TimedOut / WouldBlock)` — the connection is idle (a read
///   timeout fired before any frame byte arrived) — the caller's
///   poll loop re-checks its shutdown flag and calls again;
/// * any other `Err` — the frame is unrecoverable: an oversized
///   length prefix (rejected before allocation), a mid-frame EOF, a
///   stalled frame, or a transport error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match fill(r, &mut len_bytes, true) {
        Ok(()) => {}
        // `fill` signals "peer closed cleanly before a frame started"
        // as NotFound; surface it as the clean-EOF variant.
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            DecodeError::Oversized {
                len,
                max: MAX_FRAME,
            },
        ));
    }
    let mut payload = vec![0u8; len];
    fill(r, &mut payload, false)?;
    Ok(Some(payload))
}

/// Read exactly `buf.len()` bytes. With `allow_idle`, a clean EOF or
/// a timeout *before the first byte* is surfaced to the caller
/// (EOF via a zero-filled... see below); once any byte has arrived,
/// timeouts retry (up to [`MAX_FRAME_STALLS`]) and EOF is an error.
fn fill<R: Read>(r: &mut R, buf: &mut [u8], allow_idle: bool) -> io::Result<()> {
    let mut got = 0;
    let mut stalls = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && allow_idle {
                    // Clean close before a frame started.
                    return Err(io::Error::new(io::ErrorKind::NotFound, "peer closed"));
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if got == 0 && allow_idle {
                    // Idle connection: let the caller's poll loop
                    // re-check shutdown and come back.
                    return Err(e);
                }
                stalls += 1;
                if stalls >= MAX_FRAME_STALLS {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "frame stalled mid-transfer",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
