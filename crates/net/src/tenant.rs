//! Per-tenant admission policy: priority ceilings and token-bucket
//! rate limits, mapped onto the `bnn-serve` priority scheduler.
//!
//! The gate sits in front of `Handle::submit`: each request names a
//! tenant (the empty string is the anonymous tenant) and a requested
//! [`Priority`]; the gate clamps the priority to the tenant's ceiling
//! and charges one token from the tenant's bucket. An empty bucket
//! refuses the request with a wire-level `RateLimited` error before
//! it ever touches the admission queue, so one chatty tenant cannot
//! starve the shed/deadline machinery that protects everyone else.

use crate::lock;
use bnn_serve::Priority;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Admission policy for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Highest priority this tenant may request; higher requests are
    /// clamped, not refused.
    pub ceiling: Priority,
    /// Sustained request rate in tokens per second.
    /// `f64::INFINITY` disables rate limiting.
    pub rate: f64,
    /// Bucket capacity — the largest burst admitted at once.
    pub burst: f64,
}

impl Default for TenantPolicy {
    /// Unlimited: `High` ceiling, infinite rate.
    fn default() -> TenantPolicy {
        TenantPolicy {
            ceiling: Priority::High,
            rate: f64::INFINITY,
            burst: 1.0,
        }
    }
}

impl TenantPolicy {
    /// A rate-limited policy: `rate` requests/second sustained,
    /// bursts up to `burst`, priority capped at `ceiling`.
    pub fn limited(ceiling: Priority, rate: f64, burst: f64) -> TenantPolicy {
        TenantPolicy {
            ceiling,
            rate: rate.max(0.0),
            burst: burst.max(1.0),
        }
    }
}

/// Tenant-id → policy table with a default for unknown tenants.
#[derive(Debug, Clone, Default)]
pub struct TenantTable {
    default_policy: TenantPolicy,
    overrides: BTreeMap<String, TenantPolicy>,
}

impl TenantTable {
    /// A table where every tenant gets `default_policy`.
    pub fn new(default_policy: TenantPolicy) -> TenantTable {
        TenantTable {
            default_policy,
            overrides: BTreeMap::new(),
        }
    }

    /// Override the policy for one tenant id.
    pub fn tenant(mut self, name: &str, policy: TenantPolicy) -> TenantTable {
        self.overrides.insert(name.to_string(), policy);
        self
    }

    /// The policy governing `name`.
    pub fn policy_for(&self, name: &str) -> TenantPolicy {
        match self.overrides.get(name) {
            Some(p) => *p,
            None => self.default_policy,
        }
    }
}

/// One tenant's token bucket.
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Upper bound on live token buckets. Tenant ids arrive off the wire
/// (attacker-controlled, up to 255 bytes each), so the bucket map
/// must not grow one entry per unique id without bound. At the cap,
/// admitting a previously-unseen tenant evicts the bucket that was
/// charged longest ago. Eviction hands the evicted tenant a fresh
/// burst on its next request — a bounded rate-limit under-count that
/// only an attacker churning thousands of ids can trigger — in
/// exchange for hard-bounded memory (~1 MiB of keys at worst).
const MAX_BUCKETS: usize = 4096;

/// The runtime gate: a [`TenantTable`] plus live bucket state.
pub struct TenantGate {
    table: TenantTable,
    buckets: Mutex<BTreeMap<String, Bucket>>,
}

/// The gate refused a request: the tenant's bucket is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimited;

impl TenantGate {
    /// A gate enforcing `table`.
    pub fn new(table: TenantTable) -> TenantGate {
        TenantGate {
            table,
            buckets: Mutex::new(BTreeMap::new()),
        }
    }

    /// Admit one request from `tenant` asking for `requested`
    /// priority: clamps to the tenant's ceiling and charges a token.
    pub fn admit(&self, tenant: &str, requested: Priority) -> Result<Priority, RateLimited> {
        self.admit_at(tenant, requested, Instant::now())
    }

    /// [`TenantGate::admit`] with an injected clock, so unit tests
    /// drive refill deterministically.
    fn admit_at(
        &self,
        tenant: &str,
        requested: Priority,
        now: Instant,
    ) -> Result<Priority, RateLimited> {
        let policy = self.table.policy_for(tenant);
        let granted = if requested > policy.ceiling {
            policy.ceiling
        } else {
            requested
        };
        // Infinite rate disables the bucket entirely — also dodges
        // the NaN from `dt * f64::INFINITY` at dt == 0.
        if !policy.rate.is_finite() {
            return Ok(granted);
        }
        let mut buckets = lock(&self.buckets);
        if buckets.len() >= MAX_BUCKETS && !buckets.contains_key(tenant) {
            // Evict the least-recently-charged bucket to make room.
            // O(n) scan, but only on the insert path and only once
            // the map is full — steady-state traffic from known
            // tenants never pays it.
            let oldest = buckets
                .iter()
                .min_by_key(|(_, b)| b.last)
                .map(|(name, _)| name.clone());
            if let Some(name) = oldest {
                buckets.remove(&name);
            }
        }
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: policy.burst,
            last: now,
        });
        let dt = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = policy.burst.min(bucket.tokens + dt * policy.rate);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(granted)
        } else {
            Err(RateLimited)
        }
    }

    /// Live bucket count (test hook for the eviction bound).
    #[cfg(test)]
    fn bucket_count(&self) -> usize {
        lock(&self.buckets).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn default_policy_is_unlimited() {
        let gate = TenantGate::new(TenantTable::default());
        let now = Instant::now();
        for _ in 0..10_000 {
            assert_eq!(
                gate.admit_at("anyone", Priority::High, now),
                Ok(Priority::High)
            );
        }
    }

    #[test]
    fn ceiling_clamps_requested_priority() {
        let table = TenantTable::default().tenant(
            "guest",
            TenantPolicy::limited(Priority::Low, f64::INFINITY, 1.0),
        );
        let gate = TenantGate::new(table);
        let now = Instant::now();
        assert_eq!(
            gate.admit_at("guest", Priority::High, now),
            Ok(Priority::Low)
        );
        assert_eq!(
            gate.admit_at("guest", Priority::Low, now),
            Ok(Priority::Low)
        );
        // Other tenants keep the unlimited default.
        assert_eq!(
            gate.admit_at("vip", Priority::High, now),
            Ok(Priority::High)
        );
    }

    #[test]
    fn bucket_drains_and_refills_at_rate() {
        let table = TenantTable::default().tenant(
            "metered",
            TenantPolicy::limited(Priority::Normal, 10.0, 2.0),
        );
        let gate = TenantGate::new(table);
        let t0 = Instant::now();
        // Burst of 2 admitted, third refused.
        assert!(gate.admit_at("metered", Priority::Normal, t0).is_ok());
        assert!(gate.admit_at("metered", Priority::Normal, t0).is_ok());
        assert_eq!(
            gate.admit_at("metered", Priority::Normal, t0),
            Err(RateLimited)
        );
        // 100 ms at 10 tokens/s refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(gate.admit_at("metered", Priority::Normal, t1).is_ok());
        assert_eq!(
            gate.admit_at("metered", Priority::Normal, t1),
            Err(RateLimited)
        );
        // Refill is capped at the burst size, not unbounded.
        let t2 = t1 + Duration::from_secs(60);
        assert!(gate.admit_at("metered", Priority::Normal, t2).is_ok());
        assert!(gate.admit_at("metered", Priority::Normal, t2).is_ok());
        assert_eq!(
            gate.admit_at("metered", Priority::Normal, t2),
            Err(RateLimited)
        );
    }

    #[test]
    fn bucket_map_bounded_under_unique_tenant_flood() {
        // Finite-rate default policy: every unseen tenant id wants a
        // bucket — the attack surface REVIEW flagged.
        let gate = TenantGate::new(TenantTable::new(TenantPolicy::limited(
            Priority::Normal,
            0.0,
            1.0,
        )));
        let t0 = Instant::now();
        for i in 0..MAX_BUCKETS + 100 {
            let tenant = format!("flood-{i}");
            assert!(gate
                .admit_at(
                    &tenant,
                    Priority::Normal,
                    t0 + Duration::from_micros(i as u64)
                )
                .is_ok());
        }
        assert!(gate.bucket_count() <= MAX_BUCKETS);
        // The most recently charged tenant kept its drained bucket:
        // at rate 0 a second request must still be refused — eviction
        // would instead have handed it a fresh burst.
        let last = format!("flood-{}", MAX_BUCKETS + 99);
        assert_eq!(
            gate.admit_at(&last, Priority::Normal, t0 + Duration::from_secs(1)),
            Err(RateLimited)
        );
    }

    #[test]
    fn zero_rate_never_refills() {
        let table =
            TenantTable::default().tenant("frozen", TenantPolicy::limited(Priority::Low, 0.0, 1.0));
        let gate = TenantGate::new(table);
        let t0 = Instant::now();
        assert!(gate.admit_at("frozen", Priority::Low, t0).is_ok());
        let later = t0 + Duration::from_secs(3600);
        assert_eq!(
            gate.admit_at("frozen", Priority::Low, later),
            Err(RateLimited)
        );
    }
}
