//! Rolling-window serving telemetry behind `GET /status`.
//!
//! The monitor grows the one-shot `BENCH_serve.json` pass into live
//! telemetry: a ring buffer of recent request latencies (nearest-rank
//! p50/p99), a batch-size histogram, aggregated [`CostReport`]s keyed
//! by substrate, and net-layer counters (connections, HTTP hits,
//! rate-limited and malformed frames). Admission counters and the
//! queue-depth/in-flight gauges come straight from
//! [`bnn_serve::ServeStats`] at snapshot time, so `/status` and
//! `Server::stats()` can never disagree at quiesce.

use crate::lock;
use bnn_mcd::CostReport;
use bnn_serve::ServeStats;
use std::sync::Mutex;
use std::time::Duration;

/// Upper edges of the batch-size histogram buckets: 1, 2, 3–4, 5–8,
/// 9–16, 17–32, 33+.
const BATCH_EDGES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Number of histogram buckets (the edges plus the 33+ overflow).
pub const BATCH_BUCKETS: usize = BATCH_EDGES.len() + 1;

/// Human-readable bucket labels, aligned with [`BATCH_BUCKETS`].
pub const BATCH_LABELS: [&str; BATCH_BUCKETS] = ["1", "2", "3-4", "5-8", "9-16", "17-32", "33+"];

fn batch_bucket(size: usize) -> usize {
    match BATCH_EDGES.iter().position(|&edge| size <= edge) {
        Some(i) => i,
        None => BATCH_EDGES.len(),
    }
}

/// Aggregated engine cost for one substrate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostAgg {
    /// Replies folded into this aggregate.
    pub requests: u64,
    /// Total Monte Carlo samples served.
    pub samples: u64,
    /// Total measured engine wall time (ms).
    pub wall_ms: f64,
    /// Total modelled cycles (0 when the substrate has no model).
    pub cycles: u64,
    /// Total modelled memory traffic in bytes.
    pub mem_bytes: u64,
    /// Total modelled latency (ms).
    pub modelled_latency_ms: f64,
}

impl CostAgg {
    fn fold(&mut self, cost: &CostReport) {
        self.requests += 1;
        self.samples += cost.samples as u64;
        self.wall_ms += cost.wall_ms;
        if let Some(model) = cost.model {
            self.cycles += model.cycles;
            self.mem_bytes += model.mem_bytes;
            self.modelled_latency_ms += model.latency_ms;
        }
    }
}

/// Mutable monitor state; one lock, touched once per reply.
struct State {
    /// Latency ring, microseconds; `next` is the overwrite cursor.
    ring: Vec<u64>,
    next: usize,
    /// Total replies recorded (ring may hold only the tail).
    recorded: u64,
    batch_hist: [u64; BATCH_BUCKETS],
    cost: CostAgg,
    rate_limited: u64,
    malformed: u64,
    connections: u64,
    http_requests: u64,
}

/// Rolling-window monitor shared by every connection worker.
pub struct Monitor {
    window: usize,
    substrate: &'static str,
    state: Mutex<State>,
}

impl Monitor {
    /// A monitor keeping the most recent `window` latencies (clamped
    /// to at least 1) for the named substrate.
    pub fn new(window: usize, substrate: &'static str) -> Monitor {
        Monitor {
            window: window.max(1),
            substrate,
            state: Mutex::new(State {
                ring: Vec::new(),
                next: 0,
                recorded: 0,
                batch_hist: [0; BATCH_BUCKETS],
                cost: CostAgg::default(),
                rate_limited: 0,
                malformed: 0,
                connections: 0,
                http_requests: 0,
            }),
        }
    }

    /// Fold one served reply: wall-clock latency as seen by the
    /// connection worker, the coalesced batch size, and the cost
    /// slice.
    pub fn record_reply(&self, latency: Duration, coalesced: usize, cost: &CostReport) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut st = lock(&self.state);
        if st.ring.len() < self.window {
            st.ring.push(us);
        } else {
            let slot = st.next;
            st.ring[slot] = us;
        }
        st.next = (st.next + 1) % self.window;
        st.recorded += 1;
        st.batch_hist[batch_bucket(coalesced.max(1))] += 1;
        st.cost.fold(cost);
    }

    /// Count a frame the tenant gate refused.
    pub fn record_rate_limited(&self) {
        lock(&self.state).rate_limited += 1;
    }

    /// Count a frame the decoder refused.
    pub fn record_malformed(&self) {
        lock(&self.state).malformed += 1;
    }

    /// Count an accepted connection.
    pub fn record_connection(&self) {
        lock(&self.state).connections += 1;
    }

    /// Count an HTTP request (any path or method).
    pub fn record_http(&self) {
        lock(&self.state).http_requests += 1;
    }

    /// Consistent copy of everything the monitor knows.
    ///
    /// Only the O(window) ring clone and the scalar copies happen
    /// under the mutex; the O(window log window) sort runs after the
    /// guard drops, so a `/status` poll never stalls connection
    /// workers' `record_reply` for the duration of the sort.
    pub fn snapshot(&self) -> MonitorSnapshot {
        let (mut sorted, st) = {
            let st = lock(&self.state);
            let sorted = st.ring.clone();
            let scalars = (
                st.recorded,
                st.batch_hist,
                st.cost,
                st.rate_limited,
                st.malformed,
                st.connections,
                st.http_requests,
            );
            (sorted, scalars)
        };
        let (recorded, batch_hist, cost, rate_limited, malformed, connections, http_requests) = st;
        sorted.sort_unstable();
        MonitorSnapshot {
            substrate: self.substrate,
            window: self.window,
            latency_samples: sorted.len(),
            p50_us: nearest_rank(&sorted, 50),
            p99_us: nearest_rank(&sorted, 99),
            recorded,
            batch_hist,
            cost,
            rate_limited,
            malformed,
            connections,
            http_requests,
        }
    }

    /// Render the full `/status` document: the monitor snapshot plus
    /// the admission layer's own counters and gauges.
    pub fn status_json(&self, stats: &ServeStats) -> String {
        self.snapshot().to_json(stats)
    }
}

/// Nearest-rank percentile over an ascending-sorted slice; `None`
/// when empty.
fn nearest_rank(sorted: &[u64], pct: usize) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    // ceil(pct/100 * n), clamped to [1, n], then 1-indexed.
    let rank = (pct * sorted.len()).div_ceil(100).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Point-in-time copy of the monitor state.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    /// Which engine substrate this server fronts.
    pub substrate: &'static str,
    /// Configured latency window size.
    pub window: usize,
    /// Latencies currently in the ring (≤ window).
    pub latency_samples: usize,
    /// Nearest-rank median latency over the window, µs.
    pub p50_us: Option<u64>,
    /// Nearest-rank 99th-percentile latency over the window, µs.
    pub p99_us: Option<u64>,
    /// Total replies ever recorded.
    pub recorded: u64,
    /// Batch-size histogram, buckets per [`BATCH_LABELS`].
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// Aggregated engine cost for this substrate.
    pub cost: CostAgg,
    /// Frames refused by the tenant gate.
    pub rate_limited: u64,
    /// Frames the decoder refused.
    pub malformed: u64,
    /// Connections accepted.
    pub connections: u64,
    /// HTTP requests seen.
    pub http_requests: u64,
}

/// Append a JSON string value. Tenant-free in practice (substrate
/// names and bucket labels are static), but escape anyway so the
/// writer is safe for any input.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a float with three decimals — always a valid JSON number
/// (never NaN/inf: callers only feed accumulated finite values).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.3}"));
    } else {
        out.push_str("0.000");
    }
}

impl MonitorSnapshot {
    /// Render the `/status` JSON document, merging the admission
    /// layer's counters and gauges.
    pub fn to_json(&self, stats: &ServeStats) -> String {
        let mut s = String::with_capacity(768);
        // Advertises the newest protocol this build speaks; v1 peers
        // are still accepted (the version is negotiated per frame).
        s.push_str("{\"protocol_version\":2,\"substrate\":");
        push_json_str(&mut s, self.substrate);
        s.push_str(&format!(
            ",\"admission\":{{\"served\":{},\"shed\":{},\"expired\":{},\"failed\":{},\"rejected\":{},\"queued\":{},\"in_flight\":{}}}",
            stats.served,
            stats.shed,
            stats.expired,
            stats.failed,
            stats.rejected,
            stats.queued,
            stats.in_flight
        ));
        s.push_str(&format!(
            ",\"latency\":{{\"window\":{},\"samples\":{},\"recorded\":{},\"p50_us\":{},\"p99_us\":{}}}",
            self.window,
            self.latency_samples,
            self.recorded,
            json_opt(self.p50_us),
            json_opt(self.p99_us)
        ));
        s.push_str(",\"batch_histogram\":{");
        for (i, (label, count)) in BATCH_LABELS.iter().zip(self.batch_hist).enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, label);
            s.push_str(&format!(":{count}"));
        }
        s.push('}');
        s.push_str(&format!(
            ",\"cost\":{{\"requests\":{},\"samples\":{},\"wall_ms\":",
            self.cost.requests, self.cost.samples
        ));
        push_json_f64(&mut s, self.cost.wall_ms);
        s.push_str(&format!(
            ",\"cycles\":{},\"mem_bytes\":{},\"modelled_latency_ms\":",
            self.cost.cycles, self.cost.mem_bytes
        ));
        push_json_f64(&mut s, self.cost.modelled_latency_ms);
        s.push('}');
        s.push_str(&format!(
            ",\"net\":{{\"connections\":{},\"http_requests\":{},\"rate_limited\":{},\"malformed\":{}}}}}",
            self.connections, self.http_requests, self.rate_limited, self.malformed
        ));
        s
    }
}

fn json_opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_mcd::ModelCost;

    fn report(samples: usize, wall_ms: f64, model: Option<ModelCost>) -> CostReport {
        CostReport {
            samples,
            batch: 1,
            wall_ms,
            model,
        }
    }

    #[test]
    fn batch_buckets_partition_sizes() {
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(3), 2);
        assert_eq!(batch_bucket(4), 2);
        assert_eq!(batch_bucket(5), 3);
        assert_eq!(batch_bucket(8), 3);
        assert_eq!(batch_bucket(16), 4);
        assert_eq!(batch_bucket(17), 5);
        assert_eq!(batch_bucket(32), 5);
        assert_eq!(batch_bucket(33), 6);
        assert_eq!(batch_bucket(1000), 6);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(nearest_rank(&[], 50), None);
        assert_eq!(nearest_rank(&[7], 50), Some(7));
        assert_eq!(nearest_rank(&[7], 99), Some(7));
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&hundred, 50), Some(50));
        assert_eq!(nearest_rank(&hundred, 99), Some(99));
    }

    #[test]
    fn ring_keeps_only_the_window_tail() {
        let m = Monitor::new(4, "float");
        for us in [10u64, 20, 30, 40, 1000, 2000] {
            m.record_reply(Duration::from_micros(us), 1, &report(8, 0.5, None));
        }
        let snap = m.snapshot();
        assert_eq!(snap.latency_samples, 4);
        assert_eq!(snap.recorded, 6);
        // Window now holds {30, 40, 1000, 2000}.
        assert_eq!(snap.p50_us, Some(40));
        assert_eq!(snap.p99_us, Some(2000));
        assert_eq!(snap.cost.requests, 6);
        assert_eq!(snap.cost.samples, 48);
    }

    #[test]
    fn cost_aggregates_fold_model_fields() {
        let m = Monitor::new(16, "accel");
        let model = ModelCost {
            cycles: 100,
            latency_ms: 0.25,
            mem_bytes: 4096,
        };
        m.record_reply(Duration::from_micros(5), 3, &report(8, 1.0, Some(model)));
        m.record_reply(Duration::from_micros(5), 3, &report(8, 1.0, Some(model)));
        let snap = m.snapshot();
        assert_eq!(snap.cost.cycles, 200);
        assert_eq!(snap.cost.mem_bytes, 8192);
        assert!((snap.cost.modelled_latency_ms - 0.5).abs() < 1e-9);
        assert_eq!(snap.batch_hist[2], 2); // both coalesced=3 → "3-4"
    }

    /// Snapshot under concurrent `record_reply` must never observe a
    /// torn ring: every writer records the same latency, so any
    /// consistent snapshot has p50 == p99 == that latency, at most
    /// `window` samples, and a recorded count that only grows.
    #[test]
    fn snapshot_under_concurrent_record_never_tears() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let m = Arc::new(Monitor::new(64, "fused"));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        m.record_reply(Duration::from_micros(777), 2, &report(4, 0.1, None));
                    }
                });
            }
            let mut last_recorded = 0;
            for _ in 0..200 {
                let snap = m.snapshot();
                assert!(snap.latency_samples <= snap.window);
                assert!(snap.recorded >= last_recorded, "recorded went backwards");
                last_recorded = snap.recorded;
                if snap.latency_samples > 0 {
                    assert_eq!(snap.p50_us, Some(777), "torn ring: {:?}", snap.p50_us);
                    assert_eq!(snap.p99_us, Some(777), "torn ring: {:?}", snap.p99_us);
                }
                assert_eq!(snap.cost.requests, snap.recorded);
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn status_json_is_balanced_and_carries_counters() {
        let m = Monitor::new(8, "int8");
        m.record_reply(Duration::from_micros(123), 1, &report(4, 0.1, None));
        m.record_rate_limited();
        m.record_malformed();
        m.record_connection();
        m.record_http();
        let stats = ServeStats {
            served: 1,
            ..Default::default()
        };
        let json = m.status_json(&stats);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"substrate\":\"int8\""));
        assert!(json.contains("\"served\":1"));
        assert!(json.contains("\"rate_limited\":1"));
        assert!(json.contains("\"malformed\":1"));
        assert!(json.contains("\"connections\":1"));
        assert!(json.contains("\"http_requests\":1"));
        assert!(json.contains("\"p50_us\":123"));
    }
}
