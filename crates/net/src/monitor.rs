//! Rolling-window serving telemetry behind `GET /status` and the
//! Prometheus-style `GET /metrics` exposition.
//!
//! The monitor grows the one-shot `BENCH_serve.json` pass into live
//! telemetry: a ring buffer of recent request latencies (nearest-rank
//! p50/p99 answered from log2 bucket counts folded at record time —
//! no per-snapshot copy or sort), a cumulative [`LogHistogram`] of
//! every latency ever recorded, a batch-size histogram, aggregated
//! [`CostReport`]s keyed by substrate, and net-layer counters
//! (connections, HTTP hits, rate-limited and malformed frames).
//! Admission counters and the queue-depth/in-flight gauges come
//! straight from [`bnn_serve::ServeStats`] at snapshot time, so
//! `/status` and `Server::stats()` can never disagree at quiesce.

use crate::lock;
use bnn_mcd::CostReport;
use bnn_serve::ServeStats;
use bnn_trace::{bucket_bounds, bucket_of, LogHistogram, LOG2_BUCKETS};
use std::sync::Mutex;
use std::time::Duration;

/// Upper edges of the batch-size histogram buckets: 1, 2, 3–4, 5–8,
/// 9–16, 17–32, 33+.
const BATCH_EDGES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Number of histogram buckets (the edges plus the 33+ overflow).
pub const BATCH_BUCKETS: usize = BATCH_EDGES.len() + 1;

/// Human-readable bucket labels, aligned with [`BATCH_BUCKETS`].
pub const BATCH_LABELS: [&str; BATCH_BUCKETS] = ["1", "2", "3-4", "5-8", "9-16", "17-32", "33+"];

fn batch_bucket(size: usize) -> usize {
    match BATCH_EDGES.iter().position(|&edge| size <= edge) {
        Some(i) => i,
        None => BATCH_EDGES.len(),
    }
}

/// Aggregated engine cost for one substrate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostAgg {
    /// Replies folded into this aggregate.
    pub requests: u64,
    /// Total Monte Carlo samples served.
    pub samples: u64,
    /// Total measured engine wall time (ms).
    pub wall_ms: f64,
    /// Total modelled cycles (0 when the substrate has no model).
    pub cycles: u64,
    /// Total modelled memory traffic in bytes.
    pub mem_bytes: u64,
    /// Total modelled latency (ms).
    pub modelled_latency_ms: f64,
}

impl CostAgg {
    fn fold(&mut self, cost: &CostReport) {
        self.requests += 1;
        self.samples += cost.samples as u64;
        self.wall_ms += cost.wall_ms;
        if let Some(model) = cost.model {
            self.cycles += model.cycles;
            self.mem_bytes += model.mem_bytes;
            self.modelled_latency_ms += model.latency_ms;
        }
    }
}

/// Mutable monitor state; one lock, touched once per reply.
struct State {
    /// Latency ring, microseconds; `next` is the overwrite cursor.
    /// Kept so window bucket counts can be decremented on eviction
    /// and so the window min/max are exact.
    ring: Vec<u64>,
    next: usize,
    /// Log2 bucket counts over exactly the ring's contents,
    /// maintained incrementally: +1 on record, -1 on eviction.
    window_buckets: [u64; LOG2_BUCKETS],
    /// Every latency ever recorded — the `/metrics` histogram.
    cumulative: LogHistogram,
    /// Total replies recorded (ring may hold only the tail).
    recorded: u64,
    batch_hist: [u64; BATCH_BUCKETS],
    cost: CostAgg,
    rate_limited: u64,
    malformed: u64,
    connections: u64,
    http_requests: u64,
}

/// Rolling-window monitor shared by every connection worker.
pub struct Monitor {
    window: usize,
    substrate: &'static str,
    state: Mutex<State>,
}

impl Monitor {
    /// A monitor keeping the most recent `window` latencies (clamped
    /// to at least 1) for the named substrate.
    pub fn new(window: usize, substrate: &'static str) -> Monitor {
        Monitor {
            window: window.max(1),
            substrate,
            state: Mutex::new(State {
                ring: Vec::new(),
                next: 0,
                window_buckets: [0; LOG2_BUCKETS],
                cumulative: LogHistogram::new(),
                recorded: 0,
                batch_hist: [0; BATCH_BUCKETS],
                cost: CostAgg::default(),
                rate_limited: 0,
                malformed: 0,
                connections: 0,
                http_requests: 0,
            }),
        }
    }

    /// Fold one served reply: wall-clock latency as seen by the
    /// connection worker, the coalesced batch size, and the cost
    /// slice. O(1): the latency lands in the ring, the window bucket
    /// counts (evicted slot decremented first), and the cumulative
    /// histogram — snapshots never re-scan or sort.
    pub fn record_reply(&self, latency: Duration, coalesced: usize, cost: &CostReport) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut st = lock(&self.state);
        if st.ring.len() < self.window {
            st.ring.push(us);
        } else {
            let slot = st.next;
            let evicted = st.ring[slot];
            st.window_buckets[bucket_of(evicted)] -= 1;
            st.ring[slot] = us;
        }
        st.window_buckets[bucket_of(us)] += 1;
        st.cumulative.record(us);
        st.next = (st.next + 1) % self.window;
        st.recorded += 1;
        st.batch_hist[batch_bucket(coalesced.max(1))] += 1;
        st.cost.fold(cost);
    }

    /// Count a frame the tenant gate refused.
    pub fn record_rate_limited(&self) {
        lock(&self.state).rate_limited += 1;
    }

    /// Count a frame the decoder refused.
    pub fn record_malformed(&self) {
        lock(&self.state).malformed += 1;
    }

    /// Count an accepted connection.
    pub fn record_connection(&self) {
        lock(&self.state).connections += 1;
    }

    /// Count an HTTP request (any path or method).
    pub fn record_http(&self) {
        lock(&self.state).http_requests += 1;
    }

    /// Consistent copy of everything the monitor knows.
    ///
    /// Percentiles are answered from the window bucket counts folded
    /// at record time — no ring copy and no sort, just an O(window)
    /// min/max scan plus an O(buckets) walk, all allocation-free — so
    /// a `/status` poll holds the lock for a bounded, tiny interval
    /// regardless of window size or polling rate.
    pub fn snapshot(&self) -> MonitorSnapshot {
        let st = lock(&self.state);
        let (mut min_us, mut max_us) = (u64::MAX, 0u64);
        for &us in &st.ring {
            min_us = min_us.min(us);
            max_us = max_us.max(us);
        }
        let total = st.ring.len() as u64;
        MonitorSnapshot {
            substrate: self.substrate,
            window: self.window,
            latency_samples: st.ring.len(),
            p50_us: window_percentile(&st.window_buckets, total, min_us, max_us, 50),
            p99_us: window_percentile(&st.window_buckets, total, min_us, max_us, 99),
            recorded: st.recorded,
            batch_hist: st.batch_hist,
            cost: st.cost,
            rate_limited: st.rate_limited,
            malformed: st.malformed,
            connections: st.connections,
            http_requests: st.http_requests,
        }
    }

    /// Render the full `/status` document: the monitor snapshot plus
    /// the admission layer's own counters and gauges.
    pub fn status_json(&self, stats: &ServeStats) -> String {
        self.snapshot().to_json(stats)
    }

    /// Render the Prometheus-style text exposition behind
    /// `GET /metrics`: the always-on cumulative served-latency
    /// histogram (its `_count` equals the admission layer's `served`
    /// at quiesce — the reconciliation `bnn-loadgen --metrics-check`
    /// relies on), admission and front-door counters, and — when
    /// tracing is enabled — the per-stage span-duration histograms.
    pub fn metrics_text(&self, stats: &ServeStats) -> String {
        use bnn_trace::metrics::{push_header, push_histogram, push_sample};
        let (latency, rate_limited, malformed, connections, http_requests) = {
            let st = lock(&self.state);
            (
                st.cumulative.clone(),
                st.rate_limited,
                st.malformed,
                st.connections,
                st.http_requests,
            )
        };
        let mut out = String::with_capacity(2048);
        push_header(
            &mut out,
            "bnn_request_latency_us",
            "histogram",
            "end-to-end served-reply latency in microseconds, cumulative since start",
        );
        push_histogram(
            &mut out,
            "bnn_request_latency_us",
            &[("substrate", self.substrate)],
            &latency,
        );
        push_header(
            &mut out,
            "bnn_admission_total",
            "counter",
            "terminal admission outcomes by disposition",
        );
        for (disposition, value) in [
            ("served", stats.served),
            ("shed", stats.shed),
            ("expired", stats.expired),
            ("failed", stats.failed),
            ("rejected", stats.rejected),
        ] {
            push_sample(
                &mut out,
                "bnn_admission_total",
                &[("disposition", disposition)],
                value,
            );
        }
        push_header(
            &mut out,
            "bnn_queue_depth",
            "gauge",
            "requests accepted into the admission queue but not yet batched",
        );
        push_sample(&mut out, "bnn_queue_depth", &[], stats.queued);
        push_header(
            &mut out,
            "bnn_in_flight",
            "gauge",
            "requests taken into a micro-batch whose replies are still pending",
        );
        push_sample(&mut out, "bnn_in_flight", &[], stats.in_flight);
        push_header(&mut out, "bnn_net_total", "counter", "front-door events");
        for (event, value) in [
            ("connections", connections),
            ("http_requests", http_requests),
            ("rate_limited", rate_limited),
            ("malformed", malformed),
        ] {
            push_sample(&mut out, "bnn_net_total", &[("event", event)], value);
        }
        bnn_trace::metrics::push_stage_histograms(&mut out, "bnn_stage_duration_us");
        out
    }
}

/// Nearest-rank percentile over the window's log2 bucket counts:
/// find the bucket holding rank `ceil(pct/100 * total)`, interpolate
/// linearly within it by rank position, and clamp to the window's
/// exact `[min, max]` — same semantics as
/// [`LogHistogram::percentile_per_mille`], but over the rolling
/// window rather than the cumulative record.
fn window_percentile(
    buckets: &[u64; LOG2_BUCKETS],
    total: u64,
    min_us: u64,
    max_us: u64,
    pct: u64,
) -> Option<u64> {
    if total == 0 {
        return None;
    }
    // ceil(pct/100 * total), clamped to [1, total], 1-indexed.
    let rank = (pct * total).div_ceil(100).clamp(1, total);
    let mut cum = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if cum + count >= rank {
            let (lo, hi) = bucket_bounds(i);
            let within = (rank - cum - 1) as f64 / count as f64;
            let value = lo.saturating_add(((hi - lo) as f64 * within) as u64);
            return Some(value.clamp(min_us, max_us));
        }
        cum += count;
    }
    // Unreachable while counts sum to `total`; fall back to max.
    Some(max_us)
}

/// Point-in-time copy of the monitor state.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    /// Which engine substrate this server fronts.
    pub substrate: &'static str,
    /// Configured latency window size.
    pub window: usize,
    /// Latencies currently in the ring (≤ window).
    pub latency_samples: usize,
    /// Nearest-rank median latency over the window, µs, answered at
    /// log2-bucket resolution (interpolated within the hit bucket,
    /// clamped to the window's exact min/max).
    pub p50_us: Option<u64>,
    /// Nearest-rank 99th-percentile latency over the window, µs, at
    /// the same log2-bucket resolution as `p50_us`.
    pub p99_us: Option<u64>,
    /// Total replies ever recorded.
    pub recorded: u64,
    /// Batch-size histogram, buckets per [`BATCH_LABELS`].
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// Aggregated engine cost for this substrate.
    pub cost: CostAgg,
    /// Frames refused by the tenant gate.
    pub rate_limited: u64,
    /// Frames the decoder refused.
    pub malformed: u64,
    /// Connections accepted.
    pub connections: u64,
    /// HTTP requests seen.
    pub http_requests: u64,
}

/// Append a JSON string value. Tenant-free in practice (substrate
/// names and bucket labels are static), but escape anyway so the
/// writer is safe for any input.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a float with three decimals — always a valid JSON number
/// (never NaN/inf: callers only feed accumulated finite values).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.3}"));
    } else {
        out.push_str("0.000");
    }
}

impl MonitorSnapshot {
    /// Render the `/status` JSON document, merging the admission
    /// layer's counters and gauges.
    pub fn to_json(&self, stats: &ServeStats) -> String {
        let mut s = String::with_capacity(768);
        // Advertises the newest protocol this build speaks; v1 peers
        // are still accepted (the version is negotiated per frame).
        s.push_str("{\"protocol_version\":2,\"substrate\":");
        push_json_str(&mut s, self.substrate);
        s.push_str(&format!(
            ",\"admission\":{{\"served\":{},\"shed\":{},\"expired\":{},\"failed\":{},\"rejected\":{},\"queued\":{},\"in_flight\":{}}}",
            stats.served,
            stats.shed,
            stats.expired,
            stats.failed,
            stats.rejected,
            stats.queued,
            stats.in_flight
        ));
        s.push_str(&format!(
            ",\"latency\":{{\"window\":{},\"samples\":{},\"recorded\":{},\"p50_us\":{},\"p99_us\":{}}}",
            self.window,
            self.latency_samples,
            self.recorded,
            json_opt(self.p50_us),
            json_opt(self.p99_us)
        ));
        s.push_str(",\"batch_histogram\":{");
        for (i, (label, count)) in BATCH_LABELS.iter().zip(self.batch_hist).enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, label);
            s.push_str(&format!(":{count}"));
        }
        s.push('}');
        s.push_str(&format!(
            ",\"cost\":{{\"requests\":{},\"samples\":{},\"wall_ms\":",
            self.cost.requests, self.cost.samples
        ));
        push_json_f64(&mut s, self.cost.wall_ms);
        s.push_str(&format!(
            ",\"cycles\":{},\"mem_bytes\":{},\"modelled_latency_ms\":",
            self.cost.cycles, self.cost.mem_bytes
        ));
        push_json_f64(&mut s, self.cost.modelled_latency_ms);
        s.push('}');
        s.push_str(&format!(
            ",\"net\":{{\"connections\":{},\"http_requests\":{},\"rate_limited\":{},\"malformed\":{}}}}}",
            self.connections, self.http_requests, self.rate_limited, self.malformed
        ));
        s
    }
}

fn json_opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_mcd::ModelCost;

    fn report(samples: usize, wall_ms: f64, model: Option<ModelCost>) -> CostReport {
        CostReport {
            samples,
            batch: 1,
            wall_ms,
            model,
        }
    }

    #[test]
    fn batch_buckets_partition_sizes() {
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(3), 2);
        assert_eq!(batch_bucket(4), 2);
        assert_eq!(batch_bucket(5), 3);
        assert_eq!(batch_bucket(8), 3);
        assert_eq!(batch_bucket(16), 4);
        assert_eq!(batch_bucket(17), 5);
        assert_eq!(batch_bucket(32), 5);
        assert_eq!(batch_bucket(33), 6);
        assert_eq!(batch_bucket(1000), 6);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let zero = [0u64; LOG2_BUCKETS];
        assert_eq!(window_percentile(&zero, 0, u64::MAX, 0, 50), None);
        // One sample pins every percentile via the min/max clamp.
        let mut one = [0u64; LOG2_BUCKETS];
        one[bucket_of(7)] = 1;
        assert_eq!(window_percentile(&one, 1, 7, 7, 50), Some(7));
        assert_eq!(window_percentile(&one, 1, 7, 7, 99), Some(7));
        // Uniform values collapse to that value regardless of rank.
        let mut uniform = [0u64; LOG2_BUCKETS];
        uniform[bucket_of(777)] = 64;
        assert_eq!(window_percentile(&uniform, 64, 777, 777, 50), Some(777));
        assert_eq!(window_percentile(&uniform, 64, 777, 777, 99), Some(777));
    }

    #[test]
    fn ring_keeps_only_the_window_tail() {
        let m = Monitor::new(4, "float");
        for us in [10u64, 20, 30, 40, 1000, 2000] {
            m.record_reply(Duration::from_micros(us), 1, &report(8, 0.5, None));
        }
        let snap = m.snapshot();
        assert_eq!(snap.latency_samples, 4);
        assert_eq!(snap.recorded, 6);
        // Window now holds {30, 40, 1000, 2000}: rank 2 of 4 lands at
        // the start of 40's bucket [32, 63], rank 4 at the start of
        // 2000's bucket [1024, 2047] — log2-bucket resolution, so the
        // answers are the bucket floors, not the exact samples.
        assert_eq!(snap.p50_us, Some(32));
        assert_eq!(snap.p99_us, Some(1024));
        assert_eq!(snap.cost.requests, 6);
        assert_eq!(snap.cost.samples, 48);
    }

    #[test]
    fn cost_aggregates_fold_model_fields() {
        let m = Monitor::new(16, "accel");
        let model = ModelCost {
            cycles: 100,
            latency_ms: 0.25,
            mem_bytes: 4096,
        };
        m.record_reply(Duration::from_micros(5), 3, &report(8, 1.0, Some(model)));
        m.record_reply(Duration::from_micros(5), 3, &report(8, 1.0, Some(model)));
        let snap = m.snapshot();
        assert_eq!(snap.cost.cycles, 200);
        assert_eq!(snap.cost.mem_bytes, 8192);
        assert!((snap.cost.modelled_latency_ms - 0.5).abs() < 1e-9);
        assert_eq!(snap.batch_hist[2], 2); // both coalesced=3 → "3-4"
    }

    /// Snapshot under concurrent `record_reply` must never observe a
    /// torn ring: every writer records the same latency, so any
    /// consistent snapshot has p50 == p99 == that latency, at most
    /// `window` samples, and a recorded count that only grows.
    #[test]
    fn snapshot_under_concurrent_record_never_tears() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let m = Arc::new(Monitor::new(64, "fused"));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        m.record_reply(Duration::from_micros(777), 2, &report(4, 0.1, None));
                    }
                });
            }
            let mut last_recorded = 0;
            for _ in 0..200 {
                let snap = m.snapshot();
                assert!(snap.latency_samples <= snap.window);
                assert!(snap.recorded >= last_recorded, "recorded went backwards");
                last_recorded = snap.recorded;
                if snap.latency_samples > 0 {
                    assert_eq!(snap.p50_us, Some(777), "torn ring: {:?}", snap.p50_us);
                    assert_eq!(snap.p99_us, Some(777), "torn ring: {:?}", snap.p99_us);
                }
                assert_eq!(snap.cost.requests, snap.recorded);
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn status_json_is_balanced_and_carries_counters() {
        let m = Monitor::new(8, "int8");
        m.record_reply(Duration::from_micros(123), 1, &report(4, 0.1, None));
        m.record_rate_limited();
        m.record_malformed();
        m.record_connection();
        m.record_http();
        let stats = ServeStats {
            served: 1,
            ..Default::default()
        };
        let json = m.status_json(&stats);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"substrate\":\"int8\""));
        assert!(json.contains("\"served\":1"));
        assert!(json.contains("\"rate_limited\":1"));
        assert!(json.contains("\"malformed\":1"));
        assert!(json.contains("\"connections\":1"));
        assert!(json.contains("\"http_requests\":1"));
        assert!(json.contains("\"p50_us\":123"));
    }

    #[test]
    fn metrics_text_reconciles_with_recorded_replies() {
        let m = Monitor::new(8, "fused");
        for us in [100u64, 200, 300] {
            m.record_reply(Duration::from_micros(us), 1, &report(4, 0.1, None));
        }
        m.record_connection();
        m.record_rate_limited();
        let stats = ServeStats {
            served: 3,
            queued: 2,
            ..Default::default()
        };
        let text = m.metrics_text(&stats);
        assert!(text.contains("# TYPE bnn_request_latency_us histogram"));
        assert!(
            text.contains("bnn_request_latency_us_count{substrate=\"fused\"} 3"),
            "histogram count must equal recorded replies:\n{text}"
        );
        assert!(text.contains("bnn_request_latency_us_bucket{substrate=\"fused\",le=\"+Inf\"} 3"));
        assert!(text.contains("bnn_request_latency_us_sum{substrate=\"fused\"} 600"));
        assert!(text.contains("bnn_admission_total{disposition=\"served\"} 3"));
        assert!(text.contains("bnn_queue_depth 2"));
        assert!(text.contains("bnn_net_total{event=\"connections\"} 1"));
        assert!(text.contains("bnn_net_total{event=\"rate_limited\"} 1"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparsable sample value in {line:?}"
            );
            assert!(parts.next().is_some(), "missing name in {line:?}");
        }
    }
}
