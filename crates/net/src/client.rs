//! A minimal blocking client for the binary protocol, plus a
//! one-shot `/status` HTTP helper — enough for tests, examples and
//! load drivers without pulling in an HTTP stack.

use crate::wire::{self, Request, Response};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// A blocking binary-protocol connection.
pub struct NetClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl NetClient {
    /// Connect to a [`crate::NetServer`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// The local (client-side) address of this connection.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.stream.local_addr()
    }

    /// Send one request and block for its response (reply or typed
    /// error frame). Encode and decode failures surface as
    /// `InvalidInput` / `InvalidData` I/O errors.
    pub fn send(&mut self, request: &Request) -> io::Result<Response> {
        wire::encode_request(request, &mut self.buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        wire::write_frame(&mut self.stream, &self.buf)?;
        let payload = wire::read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before answering",
            )
        })?;
        wire::decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Fetch `GET /status` from a front door and return the JSON body
/// (status line and headers stripped).
pub fn http_get_status<A: ToSocketAddrs>(addr: A) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"GET /status HTTP/1.1\r\nHost: bnn\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 HTTP response"))?;
    match text.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
        Some((head, _)) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "unexpected status line: {}",
                head.lines().next().unwrap_or("<empty>")
            ),
        )),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed HTTP response (no header terminator)",
        )),
    }
}
