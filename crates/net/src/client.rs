//! Blocking clients for the binary protocol — the lock-step
//! [`NetClient`] (protocol v1) and the depth-bounded
//! [`PipelinedClient`] (protocol v2) — plus a one-shot HTTP GET
//! helper for the `/status`, `/metrics` and `/trace` endpoints.
//! Enough for tests, examples and load drivers without pulling in an
//! HTTP stack.
//!
//! Every connection is time-bounded: [`Timeouts`] (default bounded)
//! covers connect, read and write, and a stalled or half-dead server
//! surfaces as a typed `TimedOut` I/O error instead of hanging the
//! caller forever — the load generator's closed loop depends on it.

use crate::wire::{self, Request, Response};
use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket time bounds for client connections. All three must be
/// nonzero (`std::net` rejects zero-duration socket timeouts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeouts {
    /// TCP connect bound.
    pub connect: Duration,
    /// Read bound: the longest a caller blocks waiting for the first
    /// byte of a response frame.
    pub read: Duration,
    /// Write bound: the longest one socket write may stall.
    pub write: Duration,
}

impl Default for Timeouts {
    /// Bounded by default: 5 s connect, 30 s read, 30 s write.
    fn default() -> Timeouts {
        Timeouts {
            connect: Duration::from_secs(5),
            read: Duration::from_secs(30),
            write: Duration::from_secs(30),
        }
    }
}

/// Resolve `addr` and connect within `timeouts.connect`, then arm the
/// read/write timeouts on the stream.
fn connect_stream<A: ToSocketAddrs>(addr: A, timeouts: Timeouts) -> io::Result<TcpStream> {
    let mut last_err = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeouts.connect) {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeouts.read))?;
                stream.set_write_timeout(Some(timeouts.write))?;
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    }))
}

/// Unix surfaces an expired socket timeout as `WouldBlock`; normalize
/// both spellings to the typed `TimedOut` the caller can match on.
fn as_timeout(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::WouldBlock {
        io::Error::new(io::ErrorKind::TimedOut, e)
    } else {
        e
    }
}

/// A blocking lock-step binary-protocol connection (protocol v1): one
/// request in flight at a time.
pub struct NetClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl NetClient {
    /// Connect to a [`crate::NetServer`] with [`Timeouts::default`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<NetClient> {
        NetClient::connect_with(addr, Timeouts::default())
    }

    /// Connect with explicit time bounds.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, timeouts: Timeouts) -> io::Result<NetClient> {
        Ok(NetClient {
            stream: connect_stream(addr, timeouts)?,
            buf: Vec::new(),
        })
    }

    /// The local (client-side) address of this connection.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.stream.local_addr()
    }

    /// Send one request and block for its response (reply or typed
    /// error frame). Encode and decode failures surface as
    /// `InvalidInput` / `InvalidData` I/O errors; a server that stays
    /// silent past the read timeout surfaces as `TimedOut`.
    pub fn send(&mut self, request: &Request) -> io::Result<Response> {
        wire::encode_request(request, &mut self.buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        wire::write_frame(&mut self.stream, &self.buf).map_err(as_timeout)?;
        let payload = wire::read_frame(&mut self.stream)
            .map_err(as_timeout)?
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed before answering",
                )
            })?;
        wire::decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// The result of one [`PipelinedClient::submit`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct Submitted {
    /// Correlation id assigned to the submitted request.
    pub corr: u64,
    /// A response drained to make room, when the pipeline was already
    /// at depth — `(corr, response)` of an *earlier* request.
    pub drained: Option<(u64, Response)>,
}

/// A pipelined binary-protocol connection (protocol v2): keeps up to
/// `depth` requests in flight, correlating replies to submissions by
/// the echoed correlation id. Correlation is out-of-order safe — a
/// server may answer in any order — and a typed error frame resolves
/// only its own id. [`PipelinedClient::drain`] is the clean teardown:
/// it blocks until every in-flight id has resolved.
///
/// Lock-step v1 peers are unaffected: the pipelined client always
/// stamps a correlation id, which upgrades its frames to protocol v2;
/// a server that does not speak v2 rejects them with a typed
/// `BadVersion`/`BadFlags` decode error rather than misbehaving.
pub struct PipelinedClient {
    stream: TcpStream,
    buf: Vec<u8>,
    depth: usize,
    next_corr: u64,
    in_flight: BTreeSet<u64>,
}

impl PipelinedClient {
    /// Connect with `depth` in-flight slots (clamped to at least 1)
    /// and [`Timeouts::default`].
    pub fn connect<A: ToSocketAddrs>(addr: A, depth: usize) -> io::Result<PipelinedClient> {
        PipelinedClient::connect_with(addr, depth, Timeouts::default())
    }

    /// Connect with explicit time bounds.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        depth: usize,
        timeouts: Timeouts,
    ) -> io::Result<PipelinedClient> {
        Ok(PipelinedClient {
            stream: connect_stream(addr, timeouts)?,
            buf: Vec::new(),
            depth: depth.max(1),
            next_corr: 0,
            in_flight: BTreeSet::new(),
        })
    }

    /// The configured in-flight bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Requests currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Submit one request without waiting for its response. Assigns
    /// the next correlation id (overriding any `corr` already on the
    /// request) and returns it; when the pipeline is already at
    /// depth, one response is drained first and returned alongside.
    /// Correlation ids count up from 0 per connection, so the n-th
    /// submission carries corr `n`.
    pub fn submit(&mut self, request: &Request) -> io::Result<Submitted> {
        let drained = if self.in_flight.len() >= self.depth {
            Some(self.recv()?)
        } else {
            None
        };
        let corr = self.next_corr;
        let mut stamped = request.clone();
        stamped.corr = Some(corr);
        wire::encode_request(&stamped, &mut self.buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        wire::write_frame(&mut self.stream, &self.buf).map_err(as_timeout)?;
        self.next_corr += 1;
        self.in_flight.insert(corr);
        Ok(Submitted { corr, drained })
    }

    /// Block for the next response frame, in whatever order the
    /// server resolves them, and return it with its correlation id.
    /// Errors: `TimedOut` past the read timeout, `UnexpectedEof` if
    /// the server closes with requests still in flight, `InvalidData`
    /// for an uncorrelatable frame (no corr echo, or a corr this
    /// connection never submitted).
    pub fn recv(&mut self) -> io::Result<(u64, Response)> {
        if self.in_flight.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "nothing in flight",
            ));
        }
        let payload = wire::read_frame(&mut self.stream)
            .map_err(as_timeout)?
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed with requests in flight",
                )
            })?;
        let response = wire::decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let corr = match &response {
            Response::Reply(reply) => reply.corr,
            Response::Error(err) => err.corr,
        };
        match corr {
            Some(corr) if self.in_flight.remove(&corr) => Ok((corr, response)),
            Some(corr) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response for unknown correlation id {corr}"),
            )),
            // A corr-less frame on a pipelined connection is either a
            // v1 server or a Malformed error (our own frame never
            // decoded); neither can be matched to a submission.
            None => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                match response {
                    Response::Error(err) => {
                        format!("uncorrelated error frame mid-pipeline: {}", err.code)
                    }
                    Response::Reply(_) => "uncorrelated (v1) reply frame mid-pipeline".to_string(),
                },
            )),
        }
    }

    /// Clean teardown: block until every in-flight id has resolved
    /// and return the responses in arrival order.
    pub fn drain(&mut self) -> io::Result<Vec<(u64, Response)>> {
        let mut out = Vec::with_capacity(self.in_flight.len());
        while !self.in_flight.is_empty() {
            out.push(self.recv()?);
        }
        Ok(out)
    }
}

/// Fetch `GET /status` from a front door with [`Timeouts::default`]
/// and return the JSON body (status line and headers stripped).
pub fn http_get_status<A: ToSocketAddrs>(addr: A) -> io::Result<String> {
    http_get_status_with(addr, Timeouts::default())
}

/// [`http_get_status`] with explicit time bounds: a server that
/// accepts and never replies surfaces as a typed `TimedOut` error.
pub fn http_get_status_with<A: ToSocketAddrs>(addr: A, timeouts: Timeouts) -> io::Result<String> {
    http_get(addr, "/status", timeouts)
}

/// Fetch any front-door GET endpoint (`/status`, `/metrics`,
/// `/trace`) and return the response body with status line and
/// headers stripped. Non-200 responses and transport failures
/// surface as typed I/O errors; a server that accepts and never
/// replies surfaces as `TimedOut`.
pub fn http_get<A: ToSocketAddrs>(addr: A, path: &str, timeouts: Timeouts) -> io::Result<String> {
    if path.is_empty() || !path.starts_with('/') || path.contains(char::is_whitespace) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("path must be absolute and whitespace-free: {path:?}"),
        ));
    }
    let mut stream = connect_stream(addr, timeouts)?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: bnn\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(as_timeout)?;
    stream.flush().map_err(as_timeout)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(as_timeout)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 HTTP response"))?;
    match text.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
        Some((head, _)) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "unexpected status line: {}",
                head.lines().next().unwrap_or("<empty>")
            ),
        )),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed HTTP response (no header terminator)",
        )),
    }
}
