//! `loadgen` — closed- and open-loop load generator for the
//! `bnn-net` front door.
//!
//! Drives many concurrent pipelined wire connections against a
//! [`bnn_net::NetServer`] (self-hosted over a fused LeNet-5 by default, or an
//! external `--addr`), following a fully seeded schedule from
//! [`bnn_net::loadgen::plan`]: per-slot request classes
//! (priority/tenant/deadline mixes), per-slot pinned seeds, and
//! deterministic inter-arrival gaps (closed-loop think time, fixed
//! rate, or Poisson). Latencies fold into log2 histograms per class;
//! the run ends with a `GET /status` poll and an exact cross-check of
//! client-side response counts against the server's own counters at
//! quiesce, emitted as machine-readable `BENCH_net.json` next to
//! `BENCH_serve.json`.
//!
//! ```text
//! loadgen [--smoke] [--mode closed|fixed|poisson] [--connections N]
//!         [--requests N] [--depth N] [--think-us N] [--rate R]
//!         [--seed N] [--addr HOST:PORT] [--out PATH]
//!         [--metrics-check] [--trace-check]
//! ```
//!
//! Exit status is nonzero when the counter cross-check fails, any
//! transport-level error occurred, or a requested `--metrics-check` /
//! `--trace-check` reconciliation fails — CI runs `--smoke` with both
//! checks as a release gate.
//!
//! Determinism note: the *schedule* (which requests, which seeds,
//! which gaps) is a pure function of `--seed`; the *measurements*
//! (latencies, achieved rate) are wall-clock by nature. The waived
//! helpers below are the only clock and environment reads.

#![forbid(unsafe_code)]

use bnn_mcd::BayesConfig;
use bnn_net::loadgen::{
    plan, ArrivalMode, ClassSpec, JsonArr, JsonObj, LogHistogram, Outcomes, PlanConfig, Slot,
};
use bnn_net::{
    http_get, http_get_status_with, NetConfig, PipelinedClient, Request, Response, TenantPolicy,
    TenantTable, Timeouts,
};
use bnn_nn::models;
use bnn_serve::{BatchPolicy, Priority, ServeBackend, Server};
use bnn_tensor::{Shape4, Tensor};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const USAGE: &str = "\
loadgen — seeded closed/open-loop load generator for the bnn-net front door

USAGE:
    loadgen [OPTIONS]

OPTIONS:
    --smoke            CI preset: 4 connections x 24 requests, depth 4,
                       closed loop with 200 us think time
    --mode MODE        closed | fixed | poisson      [default: closed]
    --connections N    concurrent connections        [default: 8]
    --requests N       requests per connection       [default: 64]
    --depth N          pipelined requests in flight  [default: 8]
    --think-us N       closed-loop think time (us)   [default: 1000]
    --rate R           open-loop sends/sec per conn  [default: 200]
    --seed N           schedule seed                 [default: 45223]
    --addr HOST:PORT   drive an external server (skips the /status
                       counter cross-check; default self-hosts a fused
                       LeNet-5 NetServer on an ephemeral port)
    --out PATH         report path [default: <workspace>/BENCH_net.json]
    --metrics-check    at quiesce, fetch GET /metrics and require the
                       served-latency histogram count to equal the
                       client-side served count (self-hosted runs only)
    --trace-check      enable span tracing for the run, then fetch
                       GET /trace and require a valid Chrome trace with
                       every pipeline stage present (self-hosted only)
    --help             print this text
";

/// The binary's only wall-clock read site.
fn now() -> Instant {
    // audit:allow(determinism) the load generator measures real latencies; this is the binary's one clock intake, and it never feeds the seeded schedule.
    Instant::now()
}

/// The binary's only environment read site.
fn cli_args() -> Vec<String> {
    // audit:allow(determinism) CLI flags are the binary's boundary; they select the workload shape and never feed computed values.
    std::env::args().skip(1).collect()
}

/// Which pacing family `--mode` selected; combined with `--think-us`
/// or `--rate` into an [`ArrivalMode`] after parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModeKind {
    Closed,
    Fixed,
    Poisson,
}

#[derive(Debug, Clone)]
struct Options {
    mode: ModeKind,
    connections: usize,
    requests: usize,
    depth: usize,
    think_us: u64,
    rate: f64,
    seed: u64,
    addr: Option<String>,
    out: Option<String>,
    metrics_check: bool,
    trace_check: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            mode: ModeKind::Closed,
            connections: 8,
            requests: 64,
            depth: 8,
            think_us: 1000,
            rate: 200.0,
            seed: 45223,
            addr: None,
            out: None,
            metrics_check: false,
            trace_check: false,
        }
    }
}

impl Options {
    /// Parse CLI flags; `Ok(None)` means `--help` was asked for.
    fn parse(args: &[String]) -> Result<Option<Options>, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<&String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--help" | "-h" => return Ok(None),
                "--smoke" => {
                    opts.mode = ModeKind::Closed;
                    opts.connections = 4;
                    opts.requests = 24;
                    opts.depth = 4;
                    opts.think_us = 200;
                }
                "--mode" => {
                    opts.mode = match value("--mode")?.as_str() {
                        "closed" => ModeKind::Closed,
                        "fixed" => ModeKind::Fixed,
                        "poisson" => ModeKind::Poisson,
                        other => return Err(format!("unknown mode `{other}`")),
                    };
                }
                "--connections" => opts.connections = parse_num(value("--connections")?)?,
                "--requests" => opts.requests = parse_num(value("--requests")?)?,
                "--depth" => opts.depth = parse_num(value("--depth")?)?,
                "--think-us" => opts.think_us = parse_num(value("--think-us")?)?,
                "--rate" => {
                    opts.rate = value("--rate")?
                        .parse::<f64>()
                        .map_err(|e| format!("bad --rate: {e}"))?;
                    if !opts.rate.is_finite() || opts.rate <= 0.0 {
                        return Err("--rate must be positive".to_string());
                    }
                }
                "--seed" => opts.seed = parse_num(value("--seed")?)?,
                "--addr" => opts.addr = Some(value("--addr")?.clone()),
                "--out" => opts.out = Some(value("--out")?.clone()),
                "--metrics-check" => opts.metrics_check = true,
                "--trace-check" => opts.trace_check = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if opts.connections == 0 || opts.requests == 0 {
            return Err("--connections and --requests must be nonzero".to_string());
        }
        if opts.addr.is_some() && (opts.metrics_check || opts.trace_check) {
            return Err(
                "--metrics-check/--trace-check reconcile against a self-hosted server; \
                 drop --addr"
                    .to_string(),
            );
        }
        Ok(Some(opts))
    }

    fn arrival_mode(&self) -> ArrivalMode {
        match self.mode {
            ModeKind::Closed => ArrivalMode::Closed {
                think_us: self.think_us,
            },
            ModeKind::Fixed => ArrivalMode::Fixed {
                period_us: (1e6 / self.rate) as u64,
            },
            ModeKind::Poisson => ArrivalMode::Poisson {
                mean_gap_us: (1e6 / self.rate) as u64,
            },
        }
    }

    fn mode_name(&self) -> &'static str {
        match self.mode {
            ModeKind::Closed => "closed",
            ModeKind::Fixed => "fixed",
            ModeKind::Poisson => "poisson",
        }
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad number `{s}`: {e}"))
}

/// The default request-class mix: a priority spread, a deadline
/// class, and a rate-limited tenant so every admission path (serve,
/// expire, rate-limit) carries traffic.
fn default_classes() -> Vec<ClassSpec> {
    vec![
        ClassSpec {
            name: "high".to_string(),
            weight: 1.0,
            priority: Priority::High,
            tenant: "gold".to_string(),
            deadline_us: None,
        },
        ClassSpec {
            name: "normal".to_string(),
            weight: 4.0,
            priority: Priority::Normal,
            tenant: String::new(),
            deadline_us: None,
        },
        ClassSpec {
            name: "deadline".to_string(),
            weight: 2.0,
            priority: Priority::Normal,
            tenant: String::new(),
            deadline_us: Some(50_000),
        },
        ClassSpec {
            name: "metered".to_string(),
            weight: 1.0,
            priority: Priority::Low,
            tenant: "metered".to_string(),
            deadline_us: None,
        },
    ]
}

/// Everything one connection driver reports back.
struct ConnReport {
    outcomes: Outcomes,
    class_hist: Vec<LogHistogram>,
    overall: LogHistogram,
    sent: u64,
}

impl ConnReport {
    fn new(classes: usize) -> ConnReport {
        ConnReport {
            outcomes: Outcomes::default(),
            class_hist: vec![LogHistogram::new(); classes],
            overall: LogHistogram::new(),
            sent: 0,
        }
    }

    fn record(&mut self, meta: &[(usize, Instant)], corr: u64, response: &Response) {
        match response {
            Response::Reply(_) => {
                self.outcomes.record_served();
                if let Some(&(class, t0)) = meta.get(corr as usize) {
                    let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    if let Some(hist) = self.class_hist.get_mut(class) {
                        hist.record(us);
                    }
                    self.overall.record(us);
                }
            }
            Response::Error(err) => self.outcomes.record_error(err.code),
        }
    }
}

/// Drive one connection through its slot schedule. Transport errors
/// (timeout, reset, EOF) abort the connection; every planned slot
/// that got no response is tallied as `transport` so the report
/// always accounts for the whole schedule.
fn drive_connection(
    addr: SocketAddr,
    slots: &[Slot],
    classes: &[ClassSpec],
    input: &Tensor,
    mode: ArrivalMode,
    depth: usize,
) -> ConnReport {
    let mut report = ConnReport::new(classes.len());
    let mut client = match PipelinedClient::connect_with(addr, depth, Timeouts::default()) {
        Ok(client) => client,
        Err(_) => {
            report.outcomes.transport += slots.len() as u64;
            return report;
        }
    };
    // meta[corr] = (class, send instant): submit() hands out corr ids
    // counting up from 0, so the n-th submission is meta[n].
    let mut meta: Vec<(usize, Instant)> = Vec::with_capacity(slots.len());
    let mut target = now();
    for slot in slots {
        let spec = match classes.get(slot.class) {
            Some(spec) => spec,
            None => continue, // unreachable: plan() indexes its own mix
        };
        match mode {
            ArrivalMode::Closed { .. } => {
                // Closed loop: previous reply first, then think, then
                // send — offered load adapts to the service rate.
                if client.in_flight() >= depth.max(1) {
                    match client.recv() {
                        Ok((corr, response)) => report.record(&meta, corr, &response),
                        Err(_) => {
                            return abort_transport(report, slots, &meta, client);
                        }
                    }
                }
                if slot.gap_us > 0 {
                    thread::sleep(Duration::from_micros(slot.gap_us));
                }
            }
            ArrivalMode::Fixed { .. } | ArrivalMode::Poisson { .. } => {
                // Open loop: send at the scheduled instant no matter
                // what came back, up to the pipeline depth bound.
                target += Duration::from_micros(slot.gap_us);
                let wait = target.saturating_duration_since(now());
                if !wait.is_zero() {
                    thread::sleep(wait);
                }
            }
        }
        let mut request = Request::new(input.clone())
            .tenant(&spec.tenant)
            .priority(spec.priority)
            .seed(slot.seed);
        if let Some(us) = spec.deadline_us {
            request = request.deadline_us(us);
        }
        let sent_at = now();
        match client.submit(&request) {
            Ok(submitted) => {
                meta.push((slot.class, sent_at));
                report.sent += 1;
                if let Some((corr, response)) = submitted.drained {
                    report.record(&meta, corr, &response);
                }
            }
            Err(_) => {
                return abort_transport(report, slots, &meta, client);
            }
        }
    }
    // Clean teardown: every in-flight id resolves before we hang up.
    match client.drain() {
        Ok(responses) => {
            for (corr, response) in responses {
                report.record(&meta, corr, &response);
            }
            report
        }
        Err(_) => abort_transport(report, slots, &meta, client),
    }
}

/// Tally every slot that will never get a response as `transport`.
fn abort_transport(
    mut report: ConnReport,
    slots: &[Slot],
    meta: &[(usize, Instant)],
    client: PipelinedClient,
) -> ConnReport {
    let unsent = slots.len() as u64 - report.sent;
    let unanswered = meta.len() as u64 - (report.outcomes.total() - report.outcomes.transport);
    report.outcomes.transport += unsent + unanswered;
    drop(client);
    report
}

/// Server-side counters scraped from the `/status` JSON document.
/// Every key below appears exactly once in the document, so plain
/// substring scanning is unambiguous (no JSON parser in the tree).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct StatusCounters {
    served: u64,
    shed: u64,
    expired: u64,
    failed: u64,
    rejected: u64,
    rate_limited: u64,
    malformed: u64,
    queued: u64,
    in_flight: u64,
}

fn status_u64(json: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .ok_or_else(|| format!("/status has no `{key}` field"))?
        + pat.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|e| format!("bad `{key}` in /status: {e}"))
}

fn parse_status(json: &str) -> Result<StatusCounters, String> {
    Ok(StatusCounters {
        served: status_u64(json, "served")?,
        shed: status_u64(json, "shed")?,
        expired: status_u64(json, "expired")?,
        failed: status_u64(json, "failed")?,
        rejected: status_u64(json, "rejected")?,
        rate_limited: status_u64(json, "rate_limited")?,
        malformed: status_u64(json, "malformed")?,
        queued: status_u64(json, "queued")?,
        in_flight: status_u64(json, "in_flight")?,
    })
}

/// The quiesce contract: every response the clients counted must be
/// accounted for by the server under the same name. The door folds
/// admission sheds into wire `Rejected` frames, so client `rejected`
/// covers server `rejected + shed`; nothing may remain queued or in
/// flight once every connection has drained.
fn counters_match(client: &Outcomes, server: &StatusCounters) -> bool {
    client.served == server.served
        && client.expired == server.expired
        && client.failed == server.failed
        && client.rejected == server.rejected + server.shed
        && client.rate_limited == server.rate_limited
        && client.shutdown == 0
        && client.malformed == 0
        && client.transport == 0
        && server.malformed == 0
        && server.queued == 0
        && server.in_flight == 0
}

/// Scrape one sample value from a Prometheus-style text exposition:
/// the first line whose metric name (before labels) is exactly
/// `name`, parsed as the integer after the last space.
fn metrics_u64(text: &str, name: &str) -> Result<u64, String> {
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(name) else {
            continue;
        };
        if !(rest.starts_with('{') || rest.starts_with(' ')) {
            continue; // longer metric name sharing the prefix
        }
        let value = rest
            .rsplit_once(' ')
            .map(|(_, v)| v)
            .ok_or_else(|| format!("no value on `{name}` line"))?;
        return value
            .parse()
            .map_err(|e| format!("bad `{name}` sample `{value}`: {e}"));
    }
    Err(format!("/metrics has no `{name}` sample"))
}

/// Stages every traced request must leave behind: the full pipeline
/// from frame decode to reply write. `chunk`/`prepare`/`forward` are
/// engine-internal and backend-dependent, so they are not required.
const REQUIRED_STAGES: [&str; 9] = [
    "request",
    "decode",
    "admission",
    "submit",
    "queue_wait",
    "batch_form",
    "compute",
    "write",
    "writer_wait",
];

/// Check that `/trace` returned a Chrome trace-event document with
/// every required pipeline stage represented.
fn validate_trace(json: &str) -> Result<(), String> {
    if !json.starts_with("{\"traceEvents\":[") || !json.ends_with('}') {
        return Err("not a chrome trace-event document".to_string());
    }
    for stage in REQUIRED_STAGES {
        if !json.contains(&format!("\"name\":\"{stage}\"")) {
            return Err(format!("trace has no `{stage}` spans"));
        }
    }
    Ok(())
}

fn latency_row(name: &str, hist: &LogHistogram) -> String {
    let mut row = JsonObj::new();
    row.field_str("class", name)
        .field_u64("latency_samples", hist.total())
        .field_opt_u64("p50_us", hist.percentile_per_mille(500))
        .field_opt_u64("p99_us", hist.percentile_per_mille(990))
        .field_opt_u64("p999_us", hist.percentile_per_mille(999))
        .field_opt_u64("min_us", hist.min_us())
        .field_opt_u64("max_us", hist.max_us());
    match hist.mean_us() {
        Some(mean) => row.field_f64("mean_us", mean),
        None => row.field_opt_u64("mean_us", None),
    };
    row.finish()
}

struct RunOutcome {
    report_path: String,
    checked: bool,
    matched: bool,
    transport: u64,
    /// `Some(Err(why))` when a requested `--metrics-check` or
    /// `--trace-check` failed; `None` when not requested.
    metrics_check: Option<Result<(), String>>,
    trace_check: Option<Result<(), String>>,
}

fn run(opts: &Options) -> Result<RunOutcome, String> {
    let classes = default_classes();
    let cfg = PlanConfig {
        seed: opts.seed,
        connections: opts.connections,
        requests_per_connection: opts.requests,
        mode: opts.arrival_mode(),
        classes: classes.clone(),
    };
    let schedules = plan(&cfg).map_err(|e| format!("bad plan: {e}"))?;
    let input = Tensor::full(Shape4::new(1, 1, 28, 28), 0.25);

    // Self-host unless --addr points at an external front door.
    let hosted = match &opts.addr {
        Some(_) => None,
        None => {
            let graph = Arc::new(models::lenet5(10, 1, 28, 3).fold_batch_norm());
            let server = Server::for_graph(graph)
                .backend(ServeBackend::Fused)
                .bayes(BayesConfig::new(3, 10))
                .policy(BatchPolicy {
                    max_batch: 8,
                    queue_cap: 256,
                    ..BatchPolicy::default()
                })
                .seed(opts.seed)
                .start();
            let tenants = TenantTable::default().tenant(
                "metered",
                TenantPolicy::limited(Priority::Normal, 400.0, 4.0),
            );
            let net = bnn_net::NetServer::bind(
                "127.0.0.1:0",
                server,
                NetConfig {
                    tenants,
                    max_connections: opts.connections + 8,
                    max_pipeline: opts.depth.max(1),
                    ..NetConfig::default()
                },
            )
            .map_err(|e| format!("bind failed: {e}"))?;
            Some(net)
        }
    };
    let addr: SocketAddr = match (&hosted, &opts.addr) {
        (Some(net), _) => net.local_addr(),
        (None, Some(addr)) => addr
            .parse()
            .map_err(|e| format!("bad --addr `{addr}`: {e}"))?,
        (None, None) => return Err("no server".to_string()),
    };

    // Tracing must be on before the first request so every stage span
    // lands in the rings the /trace poll will drain.
    if opts.trace_check {
        bnn_trace::set_enabled(true);
    }

    let t_start = now();
    // audit:allow(concurrency) one scoped driver thread per load-generator connection, joined before the run summarizes — the generator is a client of the stack, its concurrency IS the workload; server-side compute still routes through WorkerPool.
    let reports: Vec<ConnReport> = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(schedules.len());
        for slots in &schedules {
            let classes = &classes;
            let input = &input;
            handles.push(scope.spawn(move || {
                drive_connection(addr, slots, classes, input, cfg.mode, opts.depth)
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(report) => report,
                Err(_) => {
                    // A panicked driver answered nothing: account its
                    // whole schedule as transport loss.
                    let mut report = ConnReport::new(classes.len());
                    report.outcomes.transport += opts.requests as u64;
                    report
                }
            })
            .collect()
    });
    let elapsed = t_start.elapsed();

    let mut outcomes = Outcomes::default();
    let mut overall = LogHistogram::new();
    let mut class_hist = vec![LogHistogram::new(); classes.len()];
    for report in &reports {
        outcomes.merge(&report.outcomes);
        overall.merge(&report.overall);
        for (folded, conn) in class_hist.iter_mut().zip(&report.class_hist) {
            folded.merge(conn);
        }
    }

    // Quiesce cross-check: every driver has drained and disconnected,
    // so the server's counters are final before we poll them.
    let (checked, matched, status) = match &hosted {
        Some(_) => {
            let json = http_get_status_with(addr, Timeouts::default())
                .map_err(|e| format!("GET /status failed: {e}"))?;
            let status = parse_status(&json)?;
            (true, counters_match(&outcomes, &status), Some(status))
        }
        None => (false, false, None),
    };
    // Observability cross-checks, still at quiesce: the histogram
    // behind /metrics must account for exactly the replies the
    // clients counted, and /trace must render every pipeline stage.
    let metrics_check = opts.metrics_check.then(|| {
        let text = http_get(addr, "/metrics", Timeouts::default())
            .map_err(|e| format!("GET /metrics failed: {e}"))?;
        let count = metrics_u64(&text, "bnn_request_latency_us_count")?;
        if count == outcomes.served {
            Ok(())
        } else {
            Err(format!(
                "latency histogram count {count} != client served {}",
                outcomes.served
            ))
        }
    });
    let trace_check = opts.trace_check.then(|| {
        let json = http_get(addr, "/trace", Timeouts::default())
            .map_err(|e| format!("GET /trace failed: {e}"))?;
        validate_trace(&json)
    });
    if opts.trace_check {
        bnn_trace::set_enabled(false);
    }
    if let Some(net) = hosted {
        net.shutdown();
    }

    let planned: u64 = schedules.iter().map(|s| s.len() as u64).sum();
    let elapsed_s = elapsed.as_secs_f64().max(1e-9);
    let offered_rps = match cfg.mode {
        ArrivalMode::Closed { .. } => None,
        ArrivalMode::Fixed { .. } | ArrivalMode::Poisson { .. } => {
            Some(opts.rate * opts.connections as f64)
        }
    };

    let mut rows = JsonArr::new();
    rows.push_raw(&latency_row("all", &overall));
    for (spec, hist) in classes.iter().zip(&class_hist) {
        rows.push_raw(&latency_row(&spec.name, hist));
    }
    let mut counters = JsonObj::new();
    counters
        .field_u64("served", outcomes.served)
        .field_u64("rejected", outcomes.rejected)
        .field_u64("expired", outcomes.expired)
        .field_u64("failed", outcomes.failed)
        .field_u64("shutdown", outcomes.shutdown)
        .field_u64("rate_limited", outcomes.rate_limited)
        .field_u64("malformed", outcomes.malformed)
        .field_u64("transport", outcomes.transport);
    let mut doc = JsonObj::new();
    doc.field_str("bench", "net_loadgen")
        .field_str("mode", opts.mode_name())
        .field_u64("seed", opts.seed)
        .field_u64("connections", opts.connections as u64)
        .field_u64("requests_per_connection", opts.requests as u64)
        .field_u64("depth", opts.depth as u64)
        .field_u64("planned", planned)
        .field_u64("completed", outcomes.total())
        .field_f64("elapsed_s", elapsed_s);
    match offered_rps {
        Some(rps) => doc.field_f64("offered_rps", rps),
        None => doc.field_opt_u64("offered_rps", None),
    };
    doc.field_f64("achieved_rps", outcomes.total() as f64 / elapsed_s)
        .field_f64("served_rps", outcomes.served as f64 / elapsed_s)
        .field_raw("latency", &rows.finish())
        .field_raw("counters", &counters.finish());
    if let Some(status) = status {
        let mut s = JsonObj::new();
        s.field_u64("served", status.served)
            .field_u64("shed", status.shed)
            .field_u64("expired", status.expired)
            .field_u64("failed", status.failed)
            .field_u64("rejected", status.rejected)
            .field_u64("rate_limited", status.rate_limited)
            .field_u64("malformed", status.malformed)
            .field_u64("queued", status.queued)
            .field_u64("in_flight", status.in_flight);
        doc.field_raw("status", &s.finish());
    } else {
        doc.field_raw("status", "null");
    }
    doc.field_bool("counters_checked", checked)
        .field_bool("counters_match", matched);
    let rendered = format!("{}\n", doc.finish());

    let report_path = match &opts.out {
        Some(path) => path.clone(),
        None => concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json").to_string(),
    };
    std::fs::write(&report_path, &rendered)
        .map_err(|e| format!("write {report_path} failed: {e}"))?;

    println!(
        "loadgen: {} mode, {} conns x {} reqs (depth {}), {:.2}s: \
         {} served / {} rejected / {} expired / {} rate-limited / {} transport",
        opts.mode_name(),
        opts.connections,
        opts.requests,
        opts.depth,
        elapsed_s,
        outcomes.served,
        outcomes.rejected,
        outcomes.expired,
        outcomes.rate_limited,
        outcomes.transport,
    );
    if let (Some(p50), Some(p99)) = (
        overall.percentile_per_mille(500),
        overall.percentile_per_mille(990),
    ) {
        println!(
            "loadgen: latency p50 {p50} us, p99 {p99} us over {} samples",
            overall.total()
        );
    }
    println!(
        "loadgen: counters {} ({report_path})",
        if !checked {
            "unchecked (external server)"
        } else if matched {
            "match /status exactly"
        } else {
            "MISMATCH against /status"
        }
    );
    for (label, check) in [("metrics", &metrics_check), ("trace", &trace_check)] {
        match check {
            None => {}
            Some(Ok(())) => println!("loadgen: {label} check passed"),
            Some(Err(why)) => println!("loadgen: {label} check FAILED: {why}"),
        }
    }
    Ok(RunOutcome {
        report_path,
        checked,
        matched,
        transport: outcomes.transport,
        metrics_check,
        trace_check,
    })
}

fn main() -> ExitCode {
    let args = cli_args();
    let opts = match Options::parse(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("loadgen: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(outcome) => {
            let check_failed = [&outcome.metrics_check, &outcome.trace_check]
                .iter()
                .any(|check| matches!(check, Some(Err(_))));
            if outcome.transport > 0 || (outcome.checked && !outcome.matched) || check_failed {
                eprintln!(
                    "loadgen: FAILED ({} transport errors, counters_match={}, \
                     observability checks ok={}); see {}",
                    outcome.transport, outcome.matched, !check_failed, outcome.report_path
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
