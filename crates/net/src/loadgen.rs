//! Deterministic planning and reporting behind the `loadgen` binary.
//!
//! Everything in this module is pure: no clocks, no threads, no I/O,
//! no ambient state — a schedule is a function of its seed, which is
//! what lets two runs of the load generator submit byte-identical
//! request streams and makes `BENCH_net.json` diffs meaningful across
//! trajectory snapshots. The binary in `src/bin/loadgen.rs` owns the
//! sockets and the wall clock; this module owns the arithmetic:
//!
//! * [`plan`] expands a [`PlanConfig`] into per-connection
//!   [`Slot`] schedules — seeded class picks (weighted by
//!   [`ClassSpec::weight`]) and seeded inter-arrival gaps for the
//!   three [`ArrivalMode`]s (closed-loop think time, open-loop fixed
//!   rate, open-loop Poisson via [`SoftRng`]);
//! * [`LogHistogram`] folds observed latencies into log2 buckets and
//!   answers per-mille percentiles (p50/p99/p999) with linear
//!   interpolation inside the hit bucket;
//! * [`Outcomes`] tallies responses by kind, mirroring the server's
//!   `/status` counters so the binary can cross-check them exactly at
//!   quiesce;
//! * [`JsonObj`] / [`JsonArr`] render the `BENCH_net.json` document
//!   (shared with the `bnn-bench` snapshot writer, so both benches
//!   emit the same dialect).
//!
//! Seed discipline: connection `c` derives its stream seed as
//! `request_seed(base, c)`, and slot `s` on that connection pins the
//! request's mask-stream seed to `request_seed(conn_seed, s)` — the
//! same SplitMix64 scramble the serve layer uses, so no two slots in
//! a run share a seed and every reply is offline-reproducible from
//! `(input, seed)` alone.

use crate::wire::ErrorCode;
use bnn_rng::SoftRng;
use bnn_serve::{request_seed, Priority};

/// Arrival pacing for one connection's request stream. The `gap_us`
/// stamped on each [`Slot`] means "wait this long before sending",
/// measured from the previous reply (closed loop) or from the
/// previous send (open loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMode {
    /// Closed loop: send, block for the reply, think, repeat. Offered
    /// load adapts to service rate — the generator can never outrun
    /// the server, so tail latencies stay honest.
    Closed {
        /// Think time between a reply and the next send.
        think_us: u64,
    },
    /// Open loop at a fixed rate: every slot is one period apart
    /// regardless of replies (up to the pipeline depth bound).
    Fixed {
        /// Constant inter-send period.
        period_us: u64,
    },
    /// Open loop with Poisson arrivals: exponentially distributed
    /// gaps with the given mean, drawn from the connection's seeded
    /// [`SoftRng`] stream.
    Poisson {
        /// Mean inter-send gap (1e6 / rate for a per-second rate).
        mean_gap_us: u64,
    },
}

/// One request class in the mix: a named (priority, tenant, deadline)
/// tuple picked per slot with probability `weight / Σ weights`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Report key (one percentile row per class in `BENCH_net.json`).
    pub name: String,
    /// Relative pick weight; non-positive weights never get picked.
    pub weight: f64,
    /// Requested admission class.
    pub priority: Priority,
    /// Tenant id presented at the door (empty = anonymous).
    pub tenant: String,
    /// Optional queue-time budget stamped on every request.
    pub deadline_us: Option<u64>,
}

/// The full load shape: how many connections, how many requests each,
/// paced how, drawn from which class mix, derived from which seed.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanConfig {
    /// Base seed; the entire schedule is a pure function of it.
    pub seed: u64,
    /// Concurrent connections to drive.
    pub connections: usize,
    /// Requests per connection.
    pub requests_per_connection: usize,
    /// Arrival pacing shared by every connection.
    pub mode: ArrivalMode,
    /// Request class mix (must be non-empty with positive total
    /// weight).
    pub classes: Vec<ClassSpec>,
}

/// One planned request: which class, which pinned seed, and how long
/// to wait before sending it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Index into [`PlanConfig::classes`].
    pub class: usize,
    /// Pinned mask-stream seed (`request_seed(conn_seed, slot)`).
    pub seed: u64,
    /// Inter-arrival gap before this send, per [`ArrivalMode`].
    pub gap_us: u64,
}

/// Why a [`PlanConfig`] could not be expanded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The class mix is empty.
    NoClasses,
    /// Every class weight is zero or negative.
    ZeroWeight,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoClasses => write!(f, "class mix is empty"),
            PlanError::ZeroWeight => write!(f, "class mix has no positive weight"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Expand a [`PlanConfig`] into one [`Slot`] schedule per connection.
/// Deterministic: same config, same schedules, independent of
/// evaluation order — each connection draws from its own forked
/// stream, so adding a connection never reshuffles the others.
pub fn plan(cfg: &PlanConfig) -> Result<Vec<Vec<Slot>>, PlanError> {
    if cfg.classes.is_empty() {
        return Err(PlanError::NoClasses);
    }
    let total_weight: f64 = cfg.classes.iter().map(|c| c.weight.max(0.0)).sum();
    // NaN weights also land here: NaN sums propagate and fail the check.
    if total_weight.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(PlanError::ZeroWeight);
    }
    let mut schedules = Vec::with_capacity(cfg.connections);
    for conn in 0..cfg.connections {
        let conn_seed = request_seed(cfg.seed, conn as u64);
        let mut rng = SoftRng::new(conn_seed);
        let mut slots = Vec::with_capacity(cfg.requests_per_connection);
        for slot in 0..cfg.requests_per_connection {
            let class = pick_class(&cfg.classes, total_weight, rng.next_f64());
            let gap_us = match cfg.mode {
                ArrivalMode::Closed { think_us } => think_us,
                ArrivalMode::Fixed { period_us } => period_us,
                ArrivalMode::Poisson { mean_gap_us } => {
                    exponential_gap(mean_gap_us, rng.next_f64())
                }
            };
            slots.push(Slot {
                class,
                seed: request_seed(conn_seed, slot as u64),
                gap_us,
            });
        }
        schedules.push(slots);
    }
    Ok(schedules)
}

/// Weighted pick: walk the cumulative weights until `u * total` falls
/// inside a class. `u` in [0, 1); non-positive weights are skipped.
fn pick_class(classes: &[ClassSpec], total_weight: f64, u: f64) -> usize {
    let target = u * total_weight;
    let mut cum = 0.0;
    let mut last_positive = 0;
    for (i, class) in classes.iter().enumerate() {
        if class.weight > 0.0 {
            cum += class.weight;
            last_positive = i;
            if target < cum {
                return i;
            }
        }
    }
    // Float round-off on the final cumulative sum: land on the last
    // pickable class rather than off the end.
    last_positive
}

/// Exponential inter-arrival gap: `-ln(1 - u) * mean`, the inverse
/// CDF of the exponential distribution. `u` in [0, 1) keeps the log
/// argument in (0, 1], so the gap is finite and non-negative; casts
/// saturate rather than wrap.
fn exponential_gap(mean_gap_us: u64, u: f64) -> u64 {
    let gap = -(1.0 - u).ln() * mean_gap_us as f64;
    if gap.is_finite() && gap >= 0.0 {
        gap as u64 // saturating f64→u64 cast
    } else {
        mean_gap_us
    }
}

// The histogram and JSON-writer types grew up here and moved down
// into `bnn-trace` once the tracer (below `bnn-net` in the crate DAG)
// needed them; re-exported so existing callers keep compiling.
pub use bnn_trace::{JsonArr, JsonObj, LogHistogram, LOG2_BUCKETS};

/// Client-side response tally, keyed the same way as the server's
/// `/status` counters so the two can be cross-checked exactly at
/// quiesce. Note the door folds admission sheds into wire `Rejected`
/// frames, so client `rejected` corresponds to server
/// `rejected + shed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Outcomes {
    /// Reply frames (successful predictions).
    pub served: u64,
    /// `Rejected` error frames (queue at capacity or shed).
    pub rejected: u64,
    /// `DeadlineExceeded` error frames.
    pub expired: u64,
    /// `BackendFailed` error frames.
    pub failed: u64,
    /// `Shutdown` error frames.
    pub shutdown: u64,
    /// `RateLimited` error frames (tenant gate).
    pub rate_limited: u64,
    /// `Malformed` error frames (should be zero for this generator).
    pub malformed: u64,
    /// Transport-level failures: timeouts, resets, unexpected EOF.
    pub transport: u64,
}

impl Outcomes {
    /// Count one reply frame.
    pub fn record_served(&mut self) {
        self.served += 1;
    }

    /// Count one typed error frame by its code.
    pub fn record_error(&mut self, code: ErrorCode) {
        match code {
            ErrorCode::Rejected => self.rejected += 1,
            ErrorCode::DeadlineExceeded => self.expired += 1,
            ErrorCode::BackendFailed => self.failed += 1,
            ErrorCode::Shutdown => self.shutdown += 1,
            ErrorCode::RateLimited => self.rate_limited += 1,
            ErrorCode::Malformed => self.malformed += 1,
        }
    }

    /// Count one transport-level failure.
    pub fn record_transport(&mut self) {
        self.transport += 1;
    }

    /// Fold another tally into this one.
    pub fn merge(&mut self, other: &Outcomes) {
        self.served += other.served;
        self.rejected += other.rejected;
        self.expired += other.expired;
        self.failed += other.failed;
        self.shutdown += other.shutdown;
        self.rate_limited += other.rate_limited;
        self.malformed += other.malformed;
        self.transport += other.transport;
    }

    /// Every response accounted for, across all kinds.
    pub fn total(&self) -> u64 {
        self.served
            + self.rejected
            + self.expired
            + self.failed
            + self.shutdown
            + self.rate_limited
            + self.malformed
            + self.transport
    }
}

/// Append a JSON-escaped string literal (with quotes) to `out`
/// (re-exported from `bnn-trace`, where the writers now live).
pub use bnn_trace::push_json_str;

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> Vec<ClassSpec> {
        vec![
            ClassSpec {
                name: "high".to_string(),
                weight: 1.0,
                priority: Priority::High,
                tenant: "gold".to_string(),
                deadline_us: None,
            },
            ClassSpec {
                name: "normal".to_string(),
                weight: 3.0,
                priority: Priority::Normal,
                tenant: String::new(),
                deadline_us: Some(5_000),
            },
        ]
    }

    fn cfg(mode: ArrivalMode) -> PlanConfig {
        PlanConfig {
            seed: 0xBEEF,
            connections: 4,
            requests_per_connection: 64,
            mode,
            classes: classes(),
        }
    }

    #[test]
    fn plan_is_deterministic_and_prefix_stable() {
        let a = plan(&cfg(ArrivalMode::Poisson { mean_gap_us: 500 }));
        let b = plan(&cfg(ArrivalMode::Poisson { mean_gap_us: 500 }));
        assert_eq!(a, b);
        // Adding a connection never reshuffles the existing ones.
        let mut wider = cfg(ArrivalMode::Poisson { mean_gap_us: 500 });
        wider.connections = 5;
        let c = plan(&wider).unwrap();
        assert_eq!(&c[..4], &a.unwrap()[..]);
    }

    #[test]
    fn plan_rejects_degenerate_mixes() {
        let mut empty = cfg(ArrivalMode::Closed { think_us: 0 });
        empty.classes.clear();
        assert_eq!(plan(&empty), Err(PlanError::NoClasses));
        let mut zero = cfg(ArrivalMode::Closed { think_us: 0 });
        for class in &mut zero.classes {
            class.weight = 0.0;
        }
        assert_eq!(plan(&zero), Err(PlanError::ZeroWeight));
    }

    #[test]
    fn slot_seeds_are_unique_across_the_run() {
        let schedules = plan(&cfg(ArrivalMode::Fixed { period_us: 100 })).unwrap();
        let mut seeds: Vec<u64> = schedules
            .iter()
            .flat_map(|conn| conn.iter().map(|slot| slot.seed))
            .collect();
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "slot seeds collided");
    }

    #[test]
    fn class_mix_tracks_weights() {
        let mut wide = cfg(ArrivalMode::Closed { think_us: 0 });
        wide.connections = 8;
        wide.requests_per_connection = 512;
        let schedules = plan(&wide).unwrap();
        let total: usize = schedules.iter().map(Vec::len).sum();
        let high: usize = schedules
            .iter()
            .flat_map(|conn| conn.iter())
            .filter(|slot| slot.class == 0)
            .count();
        // Expected 25% ± a generous tolerance for 4096 draws.
        let frac = high as f64 / total as f64;
        assert!((0.18..=0.32).contains(&frac), "high fraction {frac}");
    }

    #[test]
    fn poisson_gaps_average_near_the_mean() {
        let mut poisson = cfg(ArrivalMode::Poisson { mean_gap_us: 1_000 });
        poisson.connections = 4;
        poisson.requests_per_connection = 1024;
        let schedules = plan(&poisson).unwrap();
        let gaps: Vec<u64> = schedules
            .iter()
            .flat_map(|conn| conn.iter().map(|slot| slot.gap_us))
            .collect();
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!((700.0..=1300.0).contains(&mean), "poisson mean {mean}");
        assert!(gaps.iter().any(|&g| g > 2_000), "no tail gaps at all");
    }

    #[test]
    fn reexported_histogram_still_answers_percentiles() {
        // The implementation (and its unit suite) moved to bnn-trace;
        // this pins the re-exported surface the binary relies on.
        let mut hist = LogHistogram::new();
        for _ in 0..64 {
            hist.record(777);
        }
        assert_eq!(hist.total(), 64);
        for pm in [1, 500, 990, 999, 1000] {
            assert_eq!(hist.percentile_per_mille(pm), Some(777));
        }
        assert_eq!(LOG2_BUCKETS, 41);
    }

    #[test]
    fn outcomes_tally_by_code() {
        let mut o = Outcomes::default();
        o.record_served();
        o.record_served();
        o.record_error(ErrorCode::Rejected);
        o.record_error(ErrorCode::RateLimited);
        o.record_error(ErrorCode::DeadlineExceeded);
        o.record_transport();
        assert_eq!(o.served, 2);
        assert_eq!(o.rejected, 1);
        assert_eq!(o.rate_limited, 1);
        assert_eq!(o.expired, 1);
        assert_eq!(o.transport, 1);
        assert_eq!(o.total(), 6);
        let mut merged = Outcomes::default();
        merged.merge(&o);
        merged.merge(&o);
        assert_eq!(merged.total(), 12);
    }
}
