//! The TCP front door: a resident acceptor thread plus one worker
//! thread per connection, all over `std::net` (no external runtime).
//!
//! Each connection speaks either the length-prefixed binary protocol
//! (see [`crate::wire`]) or minimal HTTP/1.1 — sniffed from the first
//! four bytes: `b"GET "` decodes as a length prefix of ~542 MB, far
//! past [`MAX_FRAME`], so the two framings can never be confused.
//! Binary connections loop request → admission → reply; HTTP
//! connections answer one `GET /status` with the monitor's JSON
//! document and close.

use crate::lock;
use crate::monitor::Monitor;
use crate::tenant::{TenantGate, TenantTable};
use crate::wire::{self, ErrorCode, Request, MAX_FRAME};
use bnn_serve::{request_seed, Handle, ServeStats, Server};
use std::io::{self, Read, Write};
use std::net::{
    IpAddr, Ipv4Addr, Ipv6Addr, Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream,
    ToSocketAddrs,
};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Front-door configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-tenant admission policy.
    pub tenants: TenantTable,
    /// Latency ring size behind `/status` p50/p99.
    pub latency_window: usize,
    /// Socket read timeout — the poll granularity at which idle
    /// connection workers re-check the shutdown flag.
    pub read_timeout: Duration,
    /// Maximum simultaneously-open connections; excess accepts are
    /// closed immediately.
    pub max_connections: usize,
    /// Per-connection pipelining bound (protocol v2): how many
    /// admitted requests one connection may have awaiting replies
    /// before the server stops reading further frames from it (TCP
    /// backpressure). Clamped to at least 1.
    pub max_pipeline: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            tenants: TenantTable::default(),
            latency_window: 1024,
            read_timeout: Duration::from_millis(50),
            max_connections: 256,
            max_pipeline: 64,
        }
    }
}

/// State shared by the acceptor and every connection worker.
struct NetShared {
    handle: Handle,
    base_seed: u64,
    monitor: Monitor,
    gate: TenantGate,
    shutdown: AtomicBool,
    active: AtomicUsize,
    conn_seq: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
    read_timeout: Duration,
    max_connections: usize,
    max_pipeline: usize,
}

/// The running front door. Owns the [`Server`] it fronts: dropping
/// (or [`NetServer::shutdown`]) closes the listener, drains the
/// admission queue and joins every thread.
pub struct NetServer {
    local: SocketAddr,
    server: Option<Server>,
    shared: Arc<NetShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind the front door on `addr` (use port 0 for an ephemeral
    /// port; see [`NetServer::local_addr`]) over an already-started
    /// admission [`Server`].
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        server: Server,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            handle: server.handle(),
            base_seed: server.base_seed(),
            monitor: Monitor::new(cfg.latency_window, server.backend_name()),
            gate: TenantGate::new(cfg.tenants),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conn_seq: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
            read_timeout: cfg.read_timeout,
            max_connections: cfg.max_connections.max(1),
            max_pipeline: cfg.max_pipeline.max(1),
        });
        let accept_shared = Arc::clone(&shared);
        // audit:allow(concurrency) the resident acceptor thread is the front door's owner loop (one per NetServer, joined on shutdown) — not data-parallel fan-out, which still routes through WorkerPool.
        let acceptor = thread::Builder::new()
            .name("bnn-net-acceptor".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(NetServer {
            local,
            server: Some(server),
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Snapshot of the fronted server's admission counters/gauges.
    pub fn stats(&self) -> ServeStats {
        self.shared.handle.stats()
    }

    /// The `/status` JSON document, rendered in-process (exactly what
    /// an HTTP client would receive).
    pub fn status_json(&self) -> String {
        self.shared.monitor.status_json(&self.shared.handle.stats())
    }

    /// Graceful shutdown: stop accepting, drain the admission queue
    /// (already-accepted requests are served), then join the acceptor
    /// and every connection worker.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Drain and close the admission layer first: workers blocked
        // in Pending::wait resolve (reply or typed Shutdown), and any
        // frame arriving after this resolves Shutdown immediately.
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        // Unblock the acceptor's blocking accept() with a poke
        // connection; it observes the flag and exits. A wildcard bind
        // (0.0.0.0 / [::]) records the wildcard as the local addr,
        // and connecting *to* a wildcard is not portable — poke
        // loopback at the bound port instead. The connect is
        // time-bounded as a backstop; past that, a failed poke means
        // the listener is already dead — nothing to unblock.
        let mut poke = self.local;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&poke, Duration::from_secs(1));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Idle workers notice the flag within one read timeout.
        let drained: Vec<JoinHandle<()>> = {
            let mut workers = lock(&self.shared.workers);
            workers.drain(..).collect()
        };
        for worker in drained {
            let _ = worker.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local", &self.local)
            .finish_non_exhaustive()
    }
}

/// One reserved connection slot: increments `active` on construction
/// and releases it on drop, so the slot comes back even if the worker
/// unwinds mid-connection — or the spawn itself fails and the un-run
/// closure (guard and all) is dropped. Without this, a panicking
/// worker would leak its slot and ratchet the server toward refusing
/// every connection at `max_connections`.
struct SlotGuard {
    shared: Arc<NetShared>,
}

impl SlotGuard {
    fn acquire(shared: Arc<NetShared>) -> SlotGuard {
        shared.active.fetch_add(1, Ordering::SeqCst);
        SlotGuard { shared }
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The acceptor loop: accept, reap finished workers, spawn a worker
/// per connection (or close immediately at the connection cap).
fn accept_loop(listener: TcpListener, shared: Arc<NetShared>) {
    loop {
        let accepted = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let (stream, _) = match accepted {
            Ok(pair) => pair,
            // Transient accept errors (e.g. the peer reset before we
            // got to it) should not kill the front door.
            Err(_) => continue,
        };
        reap_finished(&shared);
        if shared.active.load(Ordering::SeqCst) >= shared.max_connections {
            let _ = stream.shutdown(SockShutdown::Both);
            continue;
        }
        shared.monitor.record_connection();
        let slot = SlotGuard::acquire(Arc::clone(&shared));
        let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        // audit:allow(concurrency) one worker thread per accepted connection, bounded by max_connections and joined on shutdown — connection I/O is inherently blocking on std::net, and the compute fan-out behind it still routes through WorkerPool.
        let spawned = thread::Builder::new()
            .name(format!("bnn-net-conn-{conn_id}"))
            .spawn(move || {
                serve_connection(stream, &slot.shared);
                // `slot` drops here (or on unwind), releasing the
                // reservation exactly once either way.
            });
        if let Ok(handle) = spawned {
            lock(&shared.workers).push(handle);
        }
        // Spawn failure drops the un-run closure — and the SlotGuard
        // with it — so the reservation is released and the connection
        // shed without killing the acceptor.
    }
}

/// Join workers that have already finished, so a long-lived server
/// under connection churn does not accumulate JoinHandles.
fn reap_finished(shared: &NetShared) {
    let mut workers = lock(&shared.workers);
    let mut live = Vec::with_capacity(workers.len());
    for handle in workers.drain(..) {
        if handle.is_finished() {
            let _ = handle.join();
        } else {
            live.push(handle);
        }
    }
    *workers = live;
}

/// Sniff result for one fresh connection.
enum Framing {
    Binary,
    Http,
    /// Peer closed (or shutdown began) before sending four bytes.
    Gone,
}

/// Peek the first four bytes without consuming them. `b"GET "` means
/// HTTP; anything else is a binary length prefix.
fn sniff(stream: &TcpStream, shared: &NetShared) -> Framing {
    let mut first = [0u8; 4];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Framing::Gone;
        }
        match stream.peek(&mut first) {
            Ok(0) => return Framing::Gone,
            Ok(n) if n >= 4 => {
                return if &first == b"GET " {
                    Framing::Http
                } else {
                    Framing::Binary
                };
            }
            // A partial peek returns immediately; yield briefly so
            // the loop is not a busy spin while the rest of the
            // prefix is in flight.
            Ok(_) => thread::sleep(Duration::from_millis(1)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Framing::Gone,
        }
    }
}

/// One connection, start to finish.
fn serve_connection(stream: TcpStream, shared: &NetShared) {
    // Replies are single small writes; Nagle only adds latency here.
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(shared.read_timeout)).is_err() {
        return;
    }
    match sniff(&stream, shared) {
        Framing::Binary => serve_binary(stream, shared),
        Framing::Http => serve_http(stream, shared),
        Framing::Gone => {}
    }
}

/// Outcome of reading and decoding one request frame. `Request`
/// carries the request's root trace span id (0 when tracing is
/// disabled), allocated the moment the frame arrived so every
/// downstream stage span can nest under it.
enum NextFrame {
    Request(Request, u64),
    /// Clean close, transport error, or shutdown: just return.
    Closed,
    /// Framing or decode failure: answer `Malformed`, then close.
    Malformed,
}

/// Read and decode the next request frame, polling the shutdown flag
/// on idle ticks. Shared by the lock-step and pipelined loops.
fn next_frame(stream: &mut TcpStream, shared: &NetShared) -> NextFrame {
    loop {
        let payload = match wire::read_frame(stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return NextFrame::Closed, // clean close
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return NextFrame::Closed;
                }
                continue; // idle poll tick
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized prefix or stalled frame: framing is lost.
                shared.monitor.record_malformed();
                return NextFrame::Malformed;
            }
            Err(_) => return NextFrame::Closed,
        };
        let root = bnn_trace::new_span();
        let decode_span = bnn_trace::start();
        match wire::decode_request(&payload) {
            Ok(request) => {
                bnn_trace::finish(
                    decode_span,
                    bnn_trace::Stage::Decode,
                    root,
                    payload.len() as u64,
                );
                return NextFrame::Request(request, root);
            }
            Err(_) => {
                // Typed decode error: the stream itself is still
                // framed, but trust nothing after a bad frame.
                shared.monitor.record_malformed();
                return NextFrame::Malformed;
            }
        }
    }
}

/// The binary request → reply loop. Lock-step (read → submit → wait →
/// write) until the peer sends a correlation id; the first
/// corr-carrying frame upgrades the connection to the pipelined
/// reader/writer pair, gated on protocol v2 so v1 peers never pay for
/// the second thread.
fn serve_binary(mut stream: TcpStream, shared: &NetShared) {
    let mut out = Vec::new();
    loop {
        let (request, root) = match next_frame(&mut stream, shared) {
            NextFrame::Request(request, root) => (request, root),
            NextFrame::Closed => return,
            NextFrame::Malformed => {
                wire::encode_error(ErrorCode::Malformed, None, None, None, &mut out);
                let _ = wire::write_frame(&mut stream, &out);
                return;
            }
        };
        if request.corr.is_some() {
            serve_pipelined(stream, shared, request, root);
            return;
        }
        if !serve_request(&mut stream, shared, request, root, &mut out) {
            return;
        }
    }
}

/// One unit of work handed from the pipelined reader to its writer.
enum PipeStep {
    /// Admitted: the writer waits on the pending and answers.
    Submitted {
        pending: bnn_serve::Pending,
        corr: Option<u64>,
        seed: Option<u64>,
        t0: Instant,
        /// Root trace span id (0 when tracing is disabled).
        root: u64,
    },
    /// Refused before admission (gate refusal or malformed frame):
    /// the writer emits the typed error in submission order.
    Refused {
        code: ErrorCode,
        corr: Option<u64>,
        seed: Option<u64>,
    },
}

/// Longest one pipelined reply write may stall before the writer
/// declares the peer dead and tears the connection down.
const PIPELINE_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// A pipelined (protocol v2) connection: the reader half keeps
/// admitting frames while the writer half answers completions, so up
/// to `max_pipeline` requests per connection overlap in the admission
/// queue instead of one. Replies are written in submission order
/// (requests may *complete* out of order under priority scheduling;
/// the client correlates by id either way), and the bounded channel
/// between the halves turns a peer that submits faster than it reads
/// replies into plain TCP backpressure rather than unbounded memory.
fn serve_pipelined(reader: TcpStream, shared: &NetShared, first: Request, first_root: u64) {
    let writer_stream = match reader.try_clone() {
        Ok(stream) => stream,
        Err(_) => return,
    };
    if writer_stream
        .set_write_timeout(Some(PIPELINE_WRITE_TIMEOUT))
        .is_err()
    {
        return;
    }
    let (tx, rx) = mpsc::sync_channel::<PipeStep>(shared.max_pipeline);
    // audit:allow(concurrency) the pipelined writer is this connection's second owner thread — scoped, joined before the connection worker returns — because reply writes must overlap frame reads; the compute fan-out behind it still routes through WorkerPool.
    thread::scope(|scope| {
        let writer = scope.spawn(|| pipeline_write_loop(writer_stream, shared, rx));
        pipeline_read_loop(reader, shared, first, first_root, tx);
        // `tx` was moved into the read loop and dropped there, so the
        // writer drains every queued step and exits; the join bounds
        // the connection worker's lifetime.
        let _ = writer.join();
    });
}

/// The pipelined reader: read → decode → admit → hand to the writer.
/// Never writes to the socket itself.
fn pipeline_read_loop(
    mut stream: TcpStream,
    shared: &NetShared,
    first: Request,
    first_root: u64,
    tx: mpsc::SyncSender<PipeStep>,
) {
    let mut next = Some((first, first_root));
    loop {
        let (request, root) = match next.take() {
            Some(pair) => pair,
            None => match next_frame(&mut stream, shared) {
                NextFrame::Request(request, root) => (request, root),
                NextFrame::Closed => return,
                NextFrame::Malformed => {
                    // Queued behind the in-flight steps, so every
                    // already-admitted request still gets its answer
                    // before the connection closes.
                    let _ = tx.send(PipeStep::Refused {
                        code: ErrorCode::Malformed,
                        corr: None,
                        seed: None,
                    });
                    return;
                }
            },
        };
        let corr = request.corr;
        let admit_span = bnn_trace::start();
        let admitted = shared.gate.admit(&request.tenant, request.priority);
        bnn_trace::finish(admit_span, bnn_trace::Stage::Admission, root, 0);
        let step = match admitted {
            Err(_) => {
                shared.monitor.record_rate_limited();
                PipeStep::Refused {
                    code: ErrorCode::RateLimited,
                    corr,
                    seed: request.seed,
                }
            }
            Ok(granted) => {
                let t0 = Instant::now();
                let mut submission = shared
                    .handle
                    .request(request.input)
                    .priority(granted)
                    .trace(root);
                if let Some(us) = request.deadline_us {
                    submission = submission.deadline(Duration::from_micros(us));
                }
                if let Some(seed) = request.seed {
                    submission = submission.seed(seed);
                }
                let submit_span = bnn_trace::start();
                let pending = submission.submit();
                bnn_trace::finish(submit_span, bnn_trace::Stage::Submit, root, 0);
                PipeStep::Submitted {
                    pending,
                    corr,
                    seed: request.seed,
                    t0,
                    root,
                }
            }
        };
        // A full channel blocks here — the backpressure path — until
        // the writer frees a slot; a dead writer (write failure) tears
        // the pair down via the send error instead.
        if tx.send(step).is_err() {
            return;
        }
    }
}

/// The pipelined writer: wait on each step in submission order and
/// write its reply or typed error frame. A failed or stalled write
/// ends the loop; dropping the receiver then unblocks the reader.
fn pipeline_write_loop(mut stream: TcpStream, shared: &NetShared, rx: mpsc::Receiver<PipeStep>) {
    let mut out = Vec::new();
    while let Ok(step) = rx.recv() {
        let wrote = match step {
            PipeStep::Refused { code, corr, seed } => {
                wire::encode_error(code, None, seed, corr, &mut out);
                wire::write_frame(&mut stream, &out).is_ok()
            }
            PipeStep::Submitted {
                pending,
                corr,
                seed,
                t0,
                root,
            } => {
                let id = pending.id();
                let wait_span = bnn_trace::start();
                let waited = pending.wait();
                bnn_trace::finish(wait_span, bnn_trace::Stage::WriterWait, root, 0);
                let wrote = match waited {
                    Ok(reply) => {
                        let seed = seed.unwrap_or_else(|| request_seed(shared.base_seed, reply.id));
                        shared
                            .monitor
                            .record_reply(t0.elapsed(), reply.coalesced, &reply.cost);
                        wire::encode_reply(&reply, seed, corr, &mut out);
                        wire::write_frame(&mut stream, &out).is_ok()
                    }
                    Err(err) => {
                        let seed = seed.or_else(|| id.map(|id| request_seed(shared.base_seed, id)));
                        wire::encode_error(ErrorCode::from(err), id, seed, corr, &mut out);
                        wire::write_frame(&mut stream, &out).is_ok()
                    }
                };
                record_request_span(root, t0);
                wrote
            }
        };
        if !wrote {
            return;
        }
    }
}

/// Record the request's root span — the whole server-side residency,
/// admission through reply write — so every stage span recorded with
/// `parent == root` nests under one top-level bar in the trace view.
fn record_request_span(root: u64, t0: Instant) {
    if !bnn_trace::enabled() {
        return;
    }
    let dur = t0.elapsed().as_micros() as u64;
    let now = bnn_trace::clock::now_us();
    bnn_trace::record(
        bnn_trace::Stage::Request,
        root,
        0,
        now.saturating_sub(dur),
        dur,
        0,
    );
}

/// Admit, submit and answer one decoded request. Returns `false`
/// when the connection should close (a write failed).
fn serve_request(
    stream: &mut TcpStream,
    shared: &NetShared,
    request: Request,
    root: u64,
    out: &mut Vec<u8>,
) -> bool {
    let t0 = Instant::now();
    let admit_span = bnn_trace::start();
    let admitted = shared.gate.admit(&request.tenant, request.priority);
    bnn_trace::finish(admit_span, bnn_trace::Stage::Admission, root, 0);
    let granted = match admitted {
        Ok(granted) => granted,
        Err(_) => {
            shared.monitor.record_rate_limited();
            wire::encode_error(ErrorCode::RateLimited, None, request.seed, None, out);
            return wire::write_frame(stream, out).is_ok();
        }
    };
    let mut submission = shared
        .handle
        .request(request.input)
        .priority(granted)
        .trace(root);
    if let Some(us) = request.deadline_us {
        submission = submission.deadline(Duration::from_micros(us));
    }
    if let Some(seed) = request.seed {
        submission = submission.seed(seed);
    }
    let submit_span = bnn_trace::start();
    let pending = submission.submit();
    bnn_trace::finish(submit_span, bnn_trace::Stage::Submit, root, 0);
    let id = pending.id();
    let wait_span = bnn_trace::start();
    let waited = pending.wait();
    bnn_trace::finish(wait_span, bnn_trace::Stage::WriterWait, root, 0);
    let wrote = match waited {
        Ok(reply) => {
            // Seed echo: the client's pinned seed, or the derived
            // per-request seed — either way the reply is offline-
            // reproducible from (input, seed) alone.
            let seed = request
                .seed
                .unwrap_or_else(|| request_seed(shared.base_seed, reply.id));
            shared
                .monitor
                .record_reply(t0.elapsed(), reply.coalesced, &reply.cost);
            wire::encode_reply(&reply, seed, None, out);
            wire::write_frame(stream, out).is_ok()
        }
        Err(err) => {
            let seed = request
                .seed
                .or_else(|| id.map(|id| request_seed(shared.base_seed, id)));
            wire::encode_error(ErrorCode::from(err), id, seed, None, out);
            wire::write_frame(stream, out).is_ok()
        }
    };
    record_request_span(root, t0);
    wrote
}

/// Largest HTTP request head we accept before answering 431.
const MAX_HTTP_HEAD: usize = 8 * 1024;

/// Minimal HTTP/1.1: answer one request and close.
fn serve_http(mut stream: TcpStream, shared: &NetShared) {
    shared.monitor.record_http();
    let mut head = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HTTP_HEAD {
            let _ = write_http(
                &mut stream,
                431,
                "Request Header Fields Too Large",
                JSON,
                "",
            );
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
    let text = String::from_utf8_lossy(&head);
    let request_line = text.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let _ = match (method, path) {
        ("GET", "/status") => {
            let body = shared.monitor.status_json(&shared.handle.stats());
            write_http(&mut stream, 200, "OK", JSON, &body)
        }
        ("GET", "/metrics") => {
            let body = shared.monitor.metrics_text(&shared.handle.stats());
            write_http(&mut stream, 200, "OK", "text/plain; version=0.0.4", &body)
        }
        ("GET", "/trace") => {
            // Draining hands the rings to this reader and clears them;
            // stage histograms behind /metrics are unaffected.
            let body = bnn_trace::drain_chrome_json();
            write_http(&mut stream, 200, "OK", JSON, &body)
        }
        ("GET", _) => write_http(&mut stream, 404, "Not Found", JSON, ""),
        _ => write_http(&mut stream, 405, "Method Not Allowed", JSON, ""),
    };
    let _ = stream.shutdown(SockShutdown::Both);
}

/// Content-Type of every JSON-bodied response (`/status`, `/trace`,
/// and bodiless error statuses).
const JSON: &str = "application/json";

fn write_http(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let response = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

// MAX_FRAME is re-used by the framing sniffer rationale above; keep
// the import tied to this module even if the sniffer changes.
const _: () = assert!(MAX_FRAME < 0x2054_4547, "`GET ` must decode past MAX_FRAME");
