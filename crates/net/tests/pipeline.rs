//! Pipelined-client conformance against synthetic wire peers: reply
//! correlation must be out-of-order safe, typed error frames must
//! resolve only their own id, uncorrelatable frames must surface as
//! typed `InvalidData`, and a server that accepts but never replies
//! must surface as typed `TimedOut` instead of hanging the caller —
//! the load generator's closed loop depends on every one of these.
//!
//! End-to-end pipelining against the real `NetServer` (bit-identity
//! with lock-step on all four substrates) lives in the facade's
//! `tests/net_pipeline.rs`; these tests pin the client's wire-level
//! behavior with hand-scripted peers instead.

use bnn_mcd::{CostReport, Uncertainty};
use bnn_net::wire::{
    decode_request, encode_error, encode_reply, read_frame, write_frame, ErrorCode, Request,
    Response,
};
use bnn_net::{http_get_status_with, NetClient, PipelinedClient, Timeouts};
use bnn_serve::Reply;
use bnn_tensor::{Shape4, Tensor};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

fn short_timeouts() -> Timeouts {
    Timeouts {
        connect: Duration::from_secs(2),
        read: Duration::from_millis(300),
        write: Duration::from_secs(2),
    }
}

fn input() -> Tensor {
    Tensor::full(Shape4::new(1, 1, 2, 2), 0.5)
}

/// A minimal reply whose identity is checkable from the outside: the
/// probs carry `id` so the client can prove which answer it got.
fn reply_for(id: u64) -> Reply {
    Reply {
        id,
        probs: Tensor::from_vec(Shape4::new(1, 2, 1, 1), vec![id as f32, 1.0 - id as f32]),
        uncertainty: Uncertainty {
            predicted: 0,
            confidence: 0.75,
            entropy: 0.5,
            mutual_information: 0.25,
        },
        cost: CostReport {
            samples: 4,
            batch: 1,
            wall_ms: 0.1,
            model: None,
        },
        coalesced: 1,
    }
}

/// Run a hand-scripted peer on an ephemeral port: accept exactly one
/// connection and hand it to `script`.
fn spawn_peer<F>(script: F) -> (SocketAddr, thread::JoinHandle<()>)
where
    F: FnOnce(TcpStream) + Send + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let handle = thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            script(stream);
        }
    });
    (addr, handle)
}

/// Read `n` request frames and return them decoded.
fn read_requests(stream: &mut TcpStream, n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let payload = read_frame(stream)
                .expect("read frame")
                .unwrap_or_else(|| panic!("peer closed before frame {i}"));
            decode_request(&payload).expect("decode request")
        })
        .collect()
}

#[test]
fn replies_correlate_out_of_order() {
    const N: usize = 5;
    let (addr, peer) = spawn_peer(|mut stream| {
        let requests = read_requests(&mut stream, N);
        // Answer in reverse submission order, echoing each corr; the
        // reply id is the request's pinned seed so the client can
        // prove request↔reply pairing, not just corr echo.
        let mut out = Vec::new();
        for request in requests.iter().rev() {
            let seed = request.seed.expect("test requests pin seeds");
            encode_reply(&reply_for(seed), seed, request.corr, &mut out);
            write_frame(&mut stream, &out).expect("write reply");
        }
    });
    let mut client = PipelinedClient::connect_with(addr, N, short_timeouts()).expect("connect");
    let mut corr_to_seed = Vec::new();
    for i in 0..N {
        let seed = 1000 + i as u64;
        let submitted = client
            .submit(&Request::new(input()).seed(seed))
            .expect("submit");
        assert_eq!(submitted.corr, i as u64, "corr ids count up from 0");
        assert!(
            submitted.drained.is_none(),
            "depth {N} never forces a drain"
        );
        corr_to_seed.push((submitted.corr, seed));
    }
    let responses = client.drain().expect("drain");
    assert_eq!(responses.len(), N);
    assert_eq!(client.in_flight(), 0);
    for (corr, response) in responses {
        let (_, seed) = corr_to_seed[corr as usize];
        match response {
            Response::Reply(reply) => {
                assert_eq!(reply.seed, seed, "corr {corr} got another request's reply");
                assert_eq!(reply.id, seed);
            }
            Response::Error(err) => panic!("unexpected error frame: {:?}", err.code),
        }
    }
    peer.join().expect("peer");
}

#[test]
fn error_frame_resolves_only_its_own_id() {
    let (addr, peer) = spawn_peer(|mut stream| {
        let requests = read_requests(&mut stream, 3);
        let mut out = Vec::new();
        // Middle request fails with a typed error; its neighbors are
        // served — and the error is sent FIRST, so it cannot take the
        // earlier request down with it by arrival order either.
        encode_error(
            ErrorCode::RateLimited,
            None,
            requests[1].seed,
            requests[1].corr,
            &mut out,
        );
        write_frame(&mut stream, &out).expect("write error");
        for request in [&requests[0], &requests[2]] {
            let seed = request.seed.expect("seeded");
            encode_reply(&reply_for(seed), seed, request.corr, &mut out);
            write_frame(&mut stream, &out).expect("write reply");
        }
    });
    let mut client = PipelinedClient::connect_with(addr, 3, short_timeouts()).expect("connect");
    for i in 0..3u64 {
        client
            .submit(&Request::new(input()).seed(2000 + i))
            .expect("submit");
    }
    let responses = client.drain().expect("drain");
    assert_eq!(responses.len(), 3);
    for (corr, response) in responses {
        match (corr, response) {
            (1, Response::Error(err)) => {
                assert_eq!(err.code, ErrorCode::RateLimited);
                assert_eq!(err.corr, Some(1));
                assert_eq!(err.seed, Some(2001));
            }
            (1, Response::Reply(_)) => panic!("corr 1 should have failed"),
            (corr, Response::Reply(reply)) => assert_eq!(reply.seed, 2000 + corr),
            (corr, Response::Error(err)) => {
                panic!(
                    "corr {corr} failed with {:?} but only corr 1 should fail",
                    err.code
                )
            }
        }
    }
    peer.join().expect("peer");
}

#[test]
fn unknown_corr_is_typed_invalid_data() {
    let (addr, peer) = spawn_peer(|mut stream| {
        let requests = read_requests(&mut stream, 1);
        let seed = requests[0].seed.expect("seeded");
        let mut out = Vec::new();
        encode_reply(&reply_for(seed), seed, Some(999), &mut out);
        write_frame(&mut stream, &out).expect("write reply");
    });
    let mut client = PipelinedClient::connect_with(addr, 2, short_timeouts()).expect("connect");
    client
        .submit(&Request::new(input()).seed(1))
        .expect("submit");
    let err = client.recv().expect_err("corr 999 was never submitted");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    peer.join().expect("peer");
}

#[test]
fn uncorrelated_v1_frame_is_typed_invalid_data() {
    let (addr, peer) = spawn_peer(|mut stream| {
        let requests = read_requests(&mut stream, 1);
        let seed = requests[0].seed.expect("seeded");
        // A v1 (corr-less) reply on a pipelined connection cannot be
        // matched to any submission.
        let mut out = Vec::new();
        encode_reply(&reply_for(seed), seed, None, &mut out);
        write_frame(&mut stream, &out).expect("write reply");
    });
    let mut client = PipelinedClient::connect_with(addr, 2, short_timeouts()).expect("connect");
    client
        .submit(&Request::new(input()).seed(1))
        .expect("submit");
    let err = client.recv().expect_err("corr-less frames are unmatchable");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    peer.join().expect("peer");
}

#[test]
fn recv_with_nothing_in_flight_is_invalid_input() {
    let (addr, _peer) = spawn_peer(|stream| {
        thread::sleep(Duration::from_millis(50));
        drop(stream);
    });
    let mut client = PipelinedClient::connect_with(addr, 2, short_timeouts()).expect("connect");
    let err = client.recv().expect_err("nothing in flight");
    assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
}

#[test]
fn server_close_with_requests_in_flight_is_unexpected_eof() {
    let (addr, peer) = spawn_peer(|mut stream| {
        let _ = read_requests(&mut stream, 1);
        drop(stream); // hang up without answering
    });
    let mut client = PipelinedClient::connect_with(addr, 2, short_timeouts()).expect("connect");
    client
        .submit(&Request::new(input()).seed(1))
        .expect("submit");
    peer.join().expect("peer");
    let err = client.recv().expect_err("peer hung up mid-pipeline");
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
}

/// The satellite-bug regression: a server that accepts and never
/// replies must surface as a typed `TimedOut` on every client path —
/// lock-step send, pipelined recv, and the `/status` helper — rather
/// than hanging the caller forever.
#[test]
fn silent_server_times_out_typed_everywhere() {
    // The listener accepts nothing; connects still succeed via the
    // OS backlog and all reads then starve.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");

    let mut lock_step = NetClient::connect_with(addr, short_timeouts()).expect("connect");
    let err = lock_step
        .send(&Request::new(input()).seed(1))
        .expect_err("no reply is coming");
    assert_eq!(err.kind(), io::ErrorKind::TimedOut);

    let mut pipelined = PipelinedClient::connect_with(addr, 4, short_timeouts()).expect("connect");
    pipelined
        .submit(&Request::new(input()).seed(1))
        .expect("submit");
    let err = pipelined.recv().expect_err("no reply is coming");
    assert_eq!(err.kind(), io::ErrorKind::TimedOut);

    let err = http_get_status_with(addr, short_timeouts()).expect_err("no reply is coming");
    assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    drop(listener);
}

#[test]
fn submit_at_depth_drains_exactly_one() {
    const DEPTH: usize = 2;
    let (addr, peer) = spawn_peer(|mut stream| {
        // Lock-step echo: answer each request as it arrives.
        for _ in 0..3 {
            let payload = match read_frame(&mut stream).expect("read") {
                Some(payload) => payload,
                None => return,
            };
            let request = decode_request(&payload).expect("decode");
            let seed = request.seed.expect("seeded");
            let mut out = Vec::new();
            encode_reply(&reply_for(seed), seed, request.corr, &mut out);
            write_frame(&mut stream, &out).expect("write");
        }
    });
    let mut client = PipelinedClient::connect_with(addr, DEPTH, short_timeouts()).expect("connect");
    assert_eq!(client.depth(), DEPTH);
    let a = client
        .submit(&Request::new(input()).seed(10))
        .expect("submit a");
    let b = client
        .submit(&Request::new(input()).seed(11))
        .expect("submit b");
    assert!(a.drained.is_none() && b.drained.is_none());
    assert_eq!(client.in_flight(), DEPTH);
    // Third submit is over depth: exactly one earlier response is
    // drained to make room.
    let c = client
        .submit(&Request::new(input()).seed(12))
        .expect("submit c");
    let (corr, response) = c.drained.expect("over-depth submit drains one");
    assert_eq!(corr, 0, "oldest in-flight drains first on an in-order peer");
    assert!(matches!(response, Response::Reply(_)));
    assert_eq!(client.in_flight(), DEPTH);
    let rest = client.drain().expect("drain");
    assert_eq!(rest.len(), DEPTH);
    peer.join().expect("peer");
}
