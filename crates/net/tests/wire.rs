//! Frame codec conformance: round-trip property tests over random
//! requests/replies, and malformed-input tests asserting the decoder
//! returns *typed* errors — and never panics — on truncated frames,
//! oversized length prefixes, bad version bytes, non-UTF-8 tenant
//! ids and every other way a frame can rot on the wire.

use bnn_mcd::{CostReport, ModelCost, Uncertainty};
use bnn_net::wire::{
    decode_request, decode_response, encode_error, encode_reply, encode_request, read_frame,
    write_frame, DecodeError, EncodeError, ErrorCode, Request, Response, MAX_FRAME,
};
use bnn_serve::{Priority, Reply};
use bnn_tensor::{Shape4, Tensor};
use proptest::collection;
use proptest::prelude::*;
use std::io::Cursor;

fn request_from(
    tenant: &str,
    priority: Priority,
    deadline_us: Option<u64>,
    seed: Option<u64>,
    shape: (usize, usize, usize),
    bits: &[u32],
) -> Request {
    let (c, h, w) = shape;
    let data: Vec<f32> = (0..c * h * w)
        .map(|i| f32::from_bits(bits[i % bits.len()].wrapping_add(i as u32)))
        .collect();
    let mut req = Request::new(Tensor::from_vec(Shape4::new(1, c, h, w), data))
        .tenant(tenant)
        .priority(priority);
    if let Some(us) = deadline_us {
        req = req.deadline_us(us);
    }
    if let Some(s) = seed {
        req = req.seed(s);
    }
    req
}

/// Correlation ids are the only v1→v2 delta, so a corr-less request
/// must encode byte-for-byte as protocol v1 — v1 servers keep
/// working — while a corr-carrying one flips to v2.
#[test]
fn corr_gates_the_version_byte() {
    let plain = request_from("t", Priority::Normal, Some(9), Some(7), (1, 2, 2), &[3]);
    let mut v1 = Vec::new();
    encode_request(&plain, &mut v1).unwrap();
    assert_eq!(v1[0], 1, "corr-less requests stay protocol v1");

    let mut v2 = Vec::new();
    encode_request(&plain.clone().corr(55), &mut v2).unwrap();
    assert_eq!(v2[0], 2, "corr upgrades the frame to protocol v2");
    let back = decode_request(&v2).unwrap();
    assert_eq!(back.corr, Some(55));
    assert_eq!(back.seed, Some(7));
    assert_eq!(back.deadline_us, Some(9));
}

/// The corr flag bit is defined only for v2: a v1 frame carrying it
/// is typed `BadFlags`, not silently misparsed.
#[test]
fn corr_flag_on_a_v1_frame_is_typed() {
    let req = request_from("", Priority::Normal, None, None, (1, 1, 1), &[0]);
    let mut payload = Vec::new();
    encode_request(&req, &mut payload).unwrap();
    payload[2] |= 0x04; // FLAG_CORR on a version-1 frame
    assert_eq!(decode_request(&payload), Err(DecodeError::BadFlags(0x04)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_round_trips_bit_exactly(
        tenant in prop_oneof![
            Just(String::new()),
            Just("alpha".to_string()),
            Just("tenant-with-a-much-longer-name".to_string()),
            Just("uniçode-ok-✓".to_string()),
        ],
        priority in prop_oneof![Just(Priority::Low), Just(Priority::Normal), Just(Priority::High)],
        has_deadline in any::<bool>(),
        deadline_raw in 0u64..5_000_000,
        has_seed in any::<bool>(),
        seed_raw in any::<u64>(),
        has_corr in any::<bool>(),
        corr_raw in any::<u64>(),
        c in 1usize..5,
        h in 1usize..6,
        w in 1usize..6,
        bits in collection::vec(any::<u32>(), 1..32),
    ) {
        let deadline = has_deadline.then_some(deadline_raw);
        let seed = has_seed.then_some(seed_raw);
        let mut req = request_from(&tenant, priority, deadline, seed, (c, h, w), &bits);
        if has_corr {
            req = req.corr(corr_raw);
        }
        let mut payload = Vec::new();
        encode_request(&req, &mut payload).expect("encode");
        // Per-frame version negotiation: v2 iff a corr id rides along.
        prop_assert_eq!(payload[0], if has_corr { 2 } else { 1 });
        let back = decode_request(&payload).expect("decode");
        prop_assert_eq!(&back.tenant, &req.tenant);
        prop_assert_eq!(back.priority, req.priority);
        prop_assert_eq!(back.deadline_us, req.deadline_us);
        prop_assert_eq!(back.seed, req.seed);
        prop_assert_eq!(back.corr, req.corr);
        prop_assert_eq!(back.input.shape(), req.input.shape());
        // Bit-exact data round trip, NaN payloads included.
        let a: Vec<u32> = back.input.as_slice().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = req.input.as_slice().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn reply_round_trips_bit_exactly(
        id in any::<u64>(),
        seed in any::<u64>(),
        coalesced in 1usize..40,
        prob_bits in collection::vec(any::<u32>(), 2..12),
        entropy in any::<u64>(),
        samples in 1usize..1000,
        wall_bits in any::<u64>(),
        with_model in any::<bool>(),
        has_corr in any::<bool>(),
        corr_raw in any::<u64>(),
    ) {
        let probs: Vec<f32> = prob_bits.iter().map(|&b| f32::from_bits(b)).collect();
        let k = probs.len();
        let reply = Reply {
            id,
            probs: Tensor::from_vec(Shape4::new(1, k, 1, 1), probs.clone()),
            uncertainty: Uncertainty {
                predicted: k - 1,
                confidence: f32::from_bits(prob_bits[0]),
                entropy: f64::from_bits(entropy),
                mutual_information: 0.25,
            },
            cost: CostReport {
                samples,
                batch: 1,
                wall_ms: f64::from_bits(wall_bits),
                model: with_model.then_some(ModelCost {
                    cycles: 12_345,
                    latency_ms: 0.5,
                    mem_bytes: 1 << 20,
                }),
            },
            coalesced,
        };
        let corr = has_corr.then_some(corr_raw);
        let mut payload = Vec::new();
        encode_reply(&reply, seed, corr, &mut payload);
        prop_assert_eq!(payload[0], if has_corr { 2 } else { 1 });
        let back = match decode_response(&payload) {
            Ok(Response::Reply(r)) => r,
            other => panic!("bad decode: {other:?}"),
        };
        prop_assert_eq!(back.corr, corr);
        prop_assert_eq!(back.id, id);
        prop_assert_eq!(back.seed, seed);
        prop_assert_eq!(back.coalesced as usize, coalesced);
        let a: Vec<u32> = back.probs.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = probs.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(back.uncertainty.predicted, k - 1);
        prop_assert_eq!(back.uncertainty.entropy.to_bits(), entropy);
        prop_assert_eq!(back.cost.samples, samples);
        prop_assert_eq!(back.cost.wall_ms.to_bits(), wall_bits);
        prop_assert_eq!(back.cost.model.is_some(), with_model);
    }

    #[test]
    fn error_frames_round_trip(
        code in prop_oneof![
            Just(ErrorCode::Rejected),
            Just(ErrorCode::DeadlineExceeded),
            Just(ErrorCode::BackendFailed),
            Just(ErrorCode::Shutdown),
            Just(ErrorCode::RateLimited),
            Just(ErrorCode::Malformed),
        ],
        has_id in any::<bool>(),
        id_raw in any::<u64>(),
        has_seed in any::<bool>(),
        seed_raw in any::<u64>(),
        has_corr in any::<bool>(),
        corr_raw in any::<u64>(),
    ) {
        let (id, seed) = (has_id.then_some(id_raw), has_seed.then_some(seed_raw));
        let corr = has_corr.then_some(corr_raw);
        let mut payload = Vec::new();
        encode_error(code, id, seed, corr, &mut payload);
        prop_assert_eq!(payload[0], if has_corr { 2 } else { 1 });
        match decode_response(&payload) {
            Ok(Response::Error(e)) => {
                prop_assert_eq!(e.code, code);
                prop_assert_eq!(e.id, id);
                prop_assert_eq!(e.seed, seed);
                prop_assert_eq!(e.corr, corr);
            }
            other => panic!("bad decode: {other:?}"),
        }
    }

    /// The core no-panic guarantee: arbitrary byte soup may decode or
    /// may fail with a typed error, but must never panic.
    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(
        bytes in collection::vec(any::<u8>(), 0..200),
    ) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Chopping a valid frame anywhere yields a typed error (almost
    /// always `Truncated`; never a panic, never a bogus `Ok`).
    #[test]
    fn truncations_of_valid_frames_fail_typed(
        cut_fraction in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let req = request_from("t", Priority::Normal, Some(123), Some(seed), (2, 3, 3), &[seed as u32]);
        let mut payload = Vec::new();
        encode_request(&req, &mut payload).expect("encode");
        let cut = ((payload.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < payload.len());
        prop_assert!(decode_request(&payload[..cut]).is_err());
    }
}

#[test]
fn truncated_frame_reports_expected_and_got() {
    let req = request_from("acme", Priority::High, None, None, (1, 2, 2), &[7]);
    let mut payload = Vec::new();
    encode_request(&req, &mut payload).unwrap();
    payload.truncate(payload.len() - 1);
    match decode_request(&payload) {
        Err(DecodeError::Truncated { expected, got }) => {
            assert_eq!(expected, 4, "last field is one f32");
            assert_eq!(got, 3);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn bad_version_byte_is_typed() {
    let req = request_from("", Priority::Normal, None, None, (1, 1, 1), &[0]);
    let mut payload = Vec::new();
    encode_request(&req, &mut payload).unwrap();
    payload[0] = 99;
    assert_eq!(decode_request(&payload), Err(DecodeError::BadVersion(99)));
    assert_eq!(decode_response(&payload), Err(DecodeError::BadVersion(99)));
}

#[test]
fn bad_kind_and_priority_and_flags_are_typed() {
    let req = request_from("", Priority::Normal, None, None, (1, 1, 1), &[0]);
    let mut payload = Vec::new();
    encode_request(&req, &mut payload).unwrap();

    let mut bad_kind = payload.clone();
    bad_kind[1] = 9;
    assert_eq!(decode_request(&bad_kind), Err(DecodeError::BadKind(9)));
    assert_eq!(decode_response(&bad_kind), Err(DecodeError::BadKind(9)));

    let mut bad_flags = payload.clone();
    bad_flags[2] = 0x80;
    assert_eq!(decode_request(&bad_flags), Err(DecodeError::BadFlags(0x80)));

    let mut bad_priority = payload.clone();
    bad_priority[3] = 7;
    assert_eq!(
        decode_request(&bad_priority),
        Err(DecodeError::BadPriority(7))
    );
}

#[test]
fn non_utf8_tenant_is_typed() {
    let req = request_from("ab", Priority::Low, None, None, (1, 1, 1), &[0]);
    let mut payload = Vec::new();
    encode_request(&req, &mut payload).unwrap();
    // Tenant bytes sit right after the 5-byte fixed header.
    payload[5] = 0xFF;
    payload[6] = 0xFE;
    assert_eq!(decode_request(&payload), Err(DecodeError::BadTenant));
}

#[test]
fn multi_item_shape_is_rejected_both_ways() {
    // Encoder refuses to build a multi-item request…
    let req = Request::new(Tensor::zeros(Shape4::new(2, 1, 1, 1)));
    let mut payload = Vec::new();
    assert_eq!(
        encode_request(&req, &mut payload),
        Err(EncodeError::MultiItemInput(2))
    );
    // …and the decoder refuses one crafted on the wire, so the
    // admission layer's single-item assert is unreachable from TCP.
    let good = request_from("", Priority::Normal, None, None, (1, 1, 1), &[0]);
    encode_request(&good, &mut payload).unwrap();
    let n_offset = 5; // ver, kind, flags, priority, tenant_len — then n
    payload[n_offset..n_offset + 4].copy_from_slice(&2u32.to_le_bytes());
    match decode_request(&payload) {
        Err(DecodeError::BadShape { n: 2, .. }) => {}
        other => panic!("expected BadShape, got {other:?}"),
    }
}

/// Build the minimal 21-byte request frame (anonymous tenant, no
/// deadline/seed, no data) carrying an arbitrary wire shape.
fn shape_only_frame(n: u32, c: u32, h: u32, w: u32) -> Vec<u8> {
    let mut payload = vec![1u8, 1, 0, 1, 0]; // ver, kind, flags, priority, tenant_len
    for dim in [n, c, h, w] {
        payload.extend_from_slice(&dim.to_le_bytes());
    }
    payload
}

#[test]
fn overflowing_shape_products_are_typed_not_panics() {
    // The REVIEW attack frame: c·h·w = 2^31 · 2^31 · 4 = 2^64 wraps
    // the u64 element count to 0, which once smuggled past the frame
    // bound builds a shape/data-length-mismatched tensor. The decoder
    // must reject it as BadShape — debug builds used to panic here.
    let cases = [
        (1u32, 1 << 31, 1 << 31, 4u32),
        (1, u32::MAX, u32::MAX, u32::MAX),
        (1, 1 << 31, 4, 1 << 31),
        // No u64 overflow, but the byte length exceeds the frame
        // bound — still BadShape.
        (1, 1 << 31, 2, 4),
    ];
    for (n, c, h, w) in cases {
        match decode_request(&shape_only_frame(n, c, h, w)) {
            Err(DecodeError::BadShape { .. }) => {}
            other => panic!("({n},{c},{h},{w}): expected BadShape, got {other:?}"),
        }
    }
    // A maximal-but-legal shape still decodes (as Truncated here,
    // since the frame carries no data — the shape check passed).
    let elems = (MAX_FRAME / 4) as u32;
    match decode_request(&shape_only_frame(1, elems, 1, 1)) {
        Err(DecodeError::Truncated { .. }) => {}
        other => panic!("expected Truncated past the shape check, got {other:?}"),
    }
}

#[test]
fn trailing_bytes_are_typed() {
    let req = request_from("", Priority::Normal, None, None, (1, 1, 1), &[0]);
    let mut payload = Vec::new();
    encode_request(&req, &mut payload).unwrap();
    payload.push(0xAB);
    assert_eq!(
        decode_request(&payload),
        Err(DecodeError::TrailingBytes { extra: 1 })
    );
}

#[test]
fn bad_error_code_is_typed() {
    let mut payload = Vec::new();
    encode_error(ErrorCode::Rejected, None, None, None, &mut payload);
    payload[2] = 0;
    assert_eq!(decode_response(&payload), Err(DecodeError::BadErrorCode(0)));
}

#[test]
fn frames_round_trip_through_a_stream() {
    let mut buf = Vec::new();
    write_frame(&mut buf, b"hello").unwrap();
    write_frame(&mut buf, b"").unwrap();
    let mut cursor = Cursor::new(buf);
    assert_eq!(
        read_frame(&mut cursor).unwrap().as_deref(),
        Some(&b"hello"[..])
    );
    assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(&b""[..]));
    // Clean EOF between frames is the orderly-close signal.
    assert!(read_frame(&mut cursor).unwrap().is_none());
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
    let mut cursor = Cursor::new(huge.to_vec());
    let err = read_frame(&mut cursor).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("oversized"), "unexpected message: {msg}");
}

#[test]
fn mid_frame_eof_is_an_error_not_a_clean_close() {
    let mut buf = Vec::new();
    write_frame(&mut buf, b"hello").unwrap();
    buf.truncate(buf.len() - 2); // lose the last two payload bytes
    let mut cursor = Cursor::new(buf);
    let err = read_frame(&mut cursor).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

#[test]
fn write_frame_refuses_oversized_payloads() {
    struct NullSink;
    impl std::io::Write for NullSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let payload = vec![0u8; MAX_FRAME + 1];
    let err = write_frame(&mut NullSink, &payload).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}

#[test]
fn tenant_longer_than_255_bytes_is_an_encode_error() {
    let req = Request::new(Tensor::zeros(Shape4::new(1, 1, 1, 1))).tenant(&"x".repeat(300));
    let mut payload = Vec::new();
    assert_eq!(
        encode_request(&req, &mut payload),
        Err(EncodeError::TenantTooLong(300))
    );
}
