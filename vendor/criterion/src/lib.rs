//! Offline stand-in for the `criterion` crate.
//!
//! The container has no crates.io access, so the workspace vendors a
//! minimal wall-clock harness with the same calling convention as
//! criterion's: `criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, `Bencher::iter` and `black_box`.
//! There is no statistical analysis — each benchmark reports the
//! min/mean/max of `sample_size` timed samples, with per-sample
//! iteration counts calibrated so a sample lasts roughly
//! `measurement_time / sample_size`.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Bench-harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark: calibrate, warm up, time, report.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibrate the per-sample iteration count so one sample takes
        // about measurement_time / sample_size.
        let target = self.measurement_time.max(Duration::from_millis(1)) / self.sample_size as u32;
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= target / 2 || b.iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                64
            } else {
                (target.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 64) as u64
            };
            b.iters = b.iters.saturating_mul(grow);
        }

        // Warm-up.
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            b.elapsed = Duration::ZERO;
            f(&mut b);
        }

        // Timed samples.
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<40} time: [{} {} {}]  ({} iters/sample, {} samples)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            b.iters,
            samples.len()
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Times the routine passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine `iters` times, accumulating wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Group benchmark functions, optionally with a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_cheap_routine() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut acc = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        assert!(acc > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2e-9).contains("ns"));
        assert!(fmt_time(2e-6).contains("µs"));
        assert!(fmt_time(2e-3).contains("ms"));
        assert!(fmt_time(2.0).contains("s"));
    }
}
