//! Offline stand-in for the `serde` crate.
//!
//! This container has no crates.io access, so the workspace vendors a
//! zero-dependency shim: `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! parse and expand to nothing. The derives exist purely so the
//! annotated types keep compiling; no serialization code is generated.
//! Swap this path dependency for the real `serde = { version = "1" }`
//! when building with network access — no source change is required.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
