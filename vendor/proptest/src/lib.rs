//! Offline stand-in for the `proptest` crate.
//!
//! The container has no crates.io access, so the workspace vendors a
//! small deterministic property-test driver covering exactly the
//! surface the test suites use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {..} }`
//! * range strategies over the integer and float primitives
//! * [`Just`], [`any`], `prop_oneof!` and [`collection::vec`]
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`
//!
//! Unlike real proptest there is no shrinking: each test runs
//! `cases` deterministic inputs derived from a SplitMix64 stream
//! seeded by the test name, so failures are reproducible run-to-run.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of test `name` (stable across runs).
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128-bit draw (two 64-bit halves).
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// A value generator — the stand-in for proptest's `Strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Box a strategy for `prop_oneof!` dispatch.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

macro_rules! impl_uint_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let size = (self.end as $wide) - (self.start as $wide);
                self.start + (((rng.next_u128() as $wide) % size) as $t)
            }
        }
    )+};
}

impl_uint_range!(u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128, u128 => u128);

macro_rules! impl_int_range {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let size = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u128() % size) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )+};
}

impl_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )+};
}

impl_float_range!(f32, f64);

/// Always yields its (cloned) payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly picks one of several boxed strategies (`prop_oneof!`).
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len());
        self.0[i].generate(rng)
    }
}

/// Types with a canonical full-domain strategy (stand-in for
/// proptest's `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's full domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vec of `elem`-generated values with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The property-test entry macro: a config header followed by test
/// functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let run = move || $body;
                    run();
                }
            }
        )+
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, ArbitraryValue, Just, OneOf, ProptestConfig, Strategy, TestRng,
    };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f32..4.0), &mut rng);
            assert!((-2.0..4.0).contains(&f));
            let w = Strategy::generate(&(1u64..u64::MAX), &mut rng);
            assert!(w >= 1);
        }
    }

    #[test]
    fn oneof_and_vec_generate() {
        let mut rng = TestRng::for_case("oneof", 1);
        let s = prop_oneof![Just(1usize), Just(3usize)];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || v == 3);
        }
        let vs = collection::vec(0u8..2, 1..10);
        let xs = vs.generate(&mut rng);
        assert!(!xs.is_empty() && xs.len() < 10);
        assert!(xs.iter().all(|&x| x < 2));
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("det", 7);
        let mut b = TestRng::for_case("det", 7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            if flip {
                prop_assert_ne!(x, 13);
            }
        }
    }
}
